"""Heterogeneity gate: degenerate-config differential + E11 relations.

The heterogeneity layer (``repro.platform.coretypes`` /
``repro.platform.techmodel``) promises an *exact extension*: a config
where every tile is the degenerate ``std`` type under the baseline
``cmos`` model — however that is spelled (no ``type_grid``, a broadcast
``("std",)``, a full explicit grid) — must produce ``result_digest``\\ s
byte-identical to the pre-heterogeneity engine.  The goldens in
``tests/goldens/hetero_goldens.json`` were frozen from that engine, so
this gate is a time machine: it fails iff a later change moved a single
observable float on the homogeneous path.

Two gates:

* **differential** (always) — every degenerate spelling of the three
  golden workloads, through ``run_system``, ``run_batch``, pooled
  ``run_many`` and a cold+warm ``RunCache``, against the frozen
  digests (the served path is pinned separately in
  ``tests/test_hetero_differential.py``, which needs the async engine);
* **relations** (``--relations``) — one E11 campaign cell: the
  three-type 4x4 experiment end-to-end plus the heterogeneous
  metamorphic catalog (:func:`repro.verify.hetero_relations`) and the
  full invariant checker on the E11 config.

Usage::

    PYTHONPATH=src python benchmarks/hetero_smoke.py               # differential
    PYTHONPATH=src python benchmarks/hetero_smoke.py --relations   # + E11 cell
    PYTHONPATH=src python benchmarks/hetero_smoke.py --regen       # refreeze

``--regen`` rewrites the goldens from the *current* engine; that is
only legitimate when a digest-moving change is intentional and
documented.  Exit status is non-zero on any mismatch or failed
relation.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from dataclasses import replace
from pathlib import Path

from repro.batch import result_digest, run_batch
from repro.cache import RunCache
from repro.core.system import SystemConfig, run_system
from repro.experiments.parallel import run_many

GOLDENS_PATH = (
    Path(__file__).resolve().parent.parent
    / "tests"
    / "goldens"
    / "hetero_goldens.json"
)

#: The frozen workloads.  Scales are deliberately small (a CI smoke must
#: finish in seconds) but span two meshes, two nodes and two budgets.
GOLDEN_BASES = {
    "g44_base": dict(
        width=4,
        height=4,
        node_name="16nm",
        tdp_w=25.0,
        horizon_us=6_000.0,
        arrival_rate_per_ms=10.0,
        seed=7,
        min_test_interval_us=1_000.0,
    ),
    "g44_45nm": dict(
        width=4,
        height=4,
        node_name="45nm",
        tdp_w=40.0,
        horizon_us=6_000.0,
        arrival_rate_per_ms=10.0,
        seed=5,
        min_test_interval_us=1_000.0,
    ),
    "g22_fast": dict(width=2, height=2, horizon_us=1_500.0, seed=3),
}

#: Seeds of the lockstep-batch golden cells (all on ``g44_base``).
BATCH_SEEDS = [7, 14, 21, 28]


def golden_configs():
    """Name -> :class:`SystemConfig` for the scalar golden cells."""
    return {name: SystemConfig(**kw) for name, kw in GOLDEN_BASES.items()}


def degenerate_spellings(config: SystemConfig):
    """Every config spelling that must hit the same digest.

    The empty grid, the broadcast grid, the full explicit grid and the
    explicit baseline model all describe the *same* homogeneous chip;
    the heterogeneity layer owes them identical bytes.
    """
    n_cores = config.width * config.height
    return [
        config,
        replace(config, type_grid=("std",)),
        replace(config, type_grid=("std",) * n_cores),
        replace(config, type_grid=(), tech_model="cmos"),
    ]


def load_goldens() -> dict:
    """The frozen digest table (name@seed -> sha256 hex)."""
    return json.loads(GOLDENS_PATH.read_text())


def compute_goldens() -> dict:
    """Recompute the digest table from the current engine."""
    table = {}
    for name, config in golden_configs().items():
        table[f"{name}@{config.seed}"] = result_digest(run_system(config))
    base = golden_configs()["g44_base"]
    for seed, result in zip(BATCH_SEEDS, run_batch(base, BATCH_SEEDS)):
        table[f"g44_base@{seed}"] = result_digest(result)
    return table


def differential_gate(jobs: int = 2) -> dict:
    """All degenerate paths against the frozen goldens.

    Returns a report dict; ``report["failures"]`` is empty iff every
    cell matched.
    """
    goldens = load_goldens()
    failures = []
    cells = 0

    # Scalar: every degenerate spelling of every golden workload.
    for name, config in golden_configs().items():
        want = goldens[f"{name}@{config.seed}"]
        for variant in degenerate_spellings(config):
            cells += 1
            got = result_digest(run_system(variant))
            if got != want:
                failures.append(
                    f"scalar {name}@{config.seed} "
                    f"(type_grid={variant.type_grid!r}): {got} != {want}"
                )

    # Lockstep batch, on a hetero-spelled degenerate config.
    base = replace(golden_configs()["g44_base"], type_grid=("std",))
    for seed, result in zip(BATCH_SEEDS, run_batch(base, BATCH_SEEDS)):
        cells += 1
        want = goldens[f"g44_base@{seed}"]
        got = result_digest(result)
        if got != want:
            failures.append(f"batch g44_base@{seed}: {got} != {want}")

    # Pooled sweep + cold/warm cache round trip.
    sweep = [replace(base, seed=seed) for seed in BATCH_SEEDS]
    for label, results in (
        ("pooled", run_many(sweep, jobs)),
        ("cached", _cached_twice(sweep)),
    ):
        for seed, result in zip(BATCH_SEEDS, results):
            cells += 1
            want = goldens[f"g44_base@{seed}"]
            got = result_digest(result)
            if got != want:
                failures.append(f"{label} g44_base@{seed}: {got} != {want}")

    return {"cells": cells, "failures": failures}


def _cached_twice(sweep):
    """Run a sweep cold then warm through a throwaway cache; return the
    warm results (their digests must equal the cold/scalar ones)."""
    with tempfile.TemporaryDirectory() as tmp:
        cache = RunCache(cache_dir=tmp)
        run_many(sweep, None, cache=cache)
        warm = run_many(sweep, None, cache=cache)
        if cache.stats.hits < len(sweep):
            raise RuntimeError(
                f"warm sweep hit the cache only {cache.stats.hits}/"
                f"{len(sweep)} times"
            )
        return warm


def relations_gate(horizon_us: float = 8_000.0, seed: int = 11) -> dict:
    """One E11 campaign cell: experiment + invariants + hetero relations."""
    from repro.experiments.runners import experiment_configs, run_experiment
    from repro.verify import check_relations, hetero_relations, verify_config

    failures = []
    table = run_experiment("E11", horizon_us=horizon_us, seed=seed)
    darks = [row[2] for row in table.rows]
    if not all(0.0 <= dark <= 1.0 for dark in darks):
        failures.append(f"E11 dark fractions escaped [0, 1]: {darks}")

    config = experiment_configs(horizon_us=horizon_us, seed=seed)["E11"]
    _, checker = verify_config(config)
    if not checker.ok:
        failures.append(
            f"E11 config violated {len(checker.violations)} invariant(s)"
        )

    report = check_relations(config, relations=hetero_relations())
    failures.extend(report.failures())
    return {
        "e11_rows": len(table.rows),
        "relation_runs": report.n_runs,
        "invariant_ticks": checker.ticks_checked,
        "failures": failures,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs",
        type=int,
        default=2,
        help="worker processes for the pooled sweep cell (default 2)",
    )
    parser.add_argument(
        "--relations",
        action="store_true",
        help="also run the E11 campaign cell with the hetero relations",
    )
    parser.add_argument(
        "--e11-horizon-us",
        type=float,
        default=8_000.0,
        help="horizon of the E11 relations cell (default 8 ms)",
    )
    parser.add_argument(
        "--regen",
        action="store_true",
        help="refreeze the goldens from the current engine and exit",
    )
    parser.add_argument(
        "--json", default=None, help="write the report to this path"
    )
    args = parser.parse_args(argv)

    if args.regen:
        table = compute_goldens()
        GOLDENS_PATH.write_text(
            json.dumps(table, indent=2, sort_keys=True) + "\n"
        )
        print(f"refroze {len(table)} golden digest(s) to {GOLDENS_PATH}")
        return 0

    failures = []
    print(
        f"hetero differential gate: {len(GOLDEN_BASES)} workloads, "
        f"batch seeds {BATCH_SEEDS}, goldens {GOLDENS_PATH.name}"
    )
    differential = differential_gate(args.jobs)
    failures.extend(differential["failures"])
    if not differential["failures"]:
        print(
            f"degenerate identity: {differential['cells']}/"
            f"{differential['cells']} cells match the frozen goldens"
        )

    relations = None
    if args.relations:
        relations = relations_gate(args.e11_horizon_us)
        failures.extend(relations["failures"])
        if not relations["failures"]:
            print(
                f"E11 cell: {relations['e11_rows']} experiment rows, "
                f"{relations['invariant_ticks']} invariant ticks, "
                f"{relations['relation_runs']} relation runs, all clean"
            )

    if args.json:
        report = {
            "differential": differential,
            "relations": relations,
            "failures": failures,
        }
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"report written to {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("hetero gate ok: the degenerate path is byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())

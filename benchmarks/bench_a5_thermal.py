"""A5: thermal-guard ablation with the RC thermal model enabled."""

from conftest import run_once

from repro.experiments import run_a5_thermal_guard


def test_a5_thermal_guard(benchmark):
    result = run_once(benchmark, run_a5_thermal_guard, horizon_us=60_000.0)
    rows = result.rows
    assert all(row[1] > 45.0 for row in rows)       # the die actually heats
    assert rows[-1][2] <= rows[0][2]                # big margin defers tests

"""E7: runtime-mapping comparison (the test-aware utilization mapper).

At moderate load the proposed mapper keeps contiguous-level communication
locality while reducing test aborts/staleness versus the contiguous
baseline (random placement gets freshness too, but wrecks locality).
"""

from conftest import run_once

from repro.experiments import run_e7_mapping


def test_e7_mapping(benchmark):
    result = run_once(benchmark, run_e7_mapping, horizon_us=60_000.0)
    rows = {r[0]: r for r in result.rows}
    # Locality: test-aware ~ contiguous, both far better than random.
    assert result.scalars["hops_overhead_vs_contiguous"] < 0.5
    assert rows["test-aware"][2] < rows["random"][2] - 0.5
    # Test freshness: no worse than the contiguous baseline on aborts.
    assert rows["test-aware"][5] <= rows["contiguous"][5]

"""A4: test-preemption ablation — where the non-intrusiveness comes from."""

from conftest import run_once

from repro.experiments import run_a4_preemption


def test_a4_preemption(benchmark):
    result = run_once(benchmark, run_a4_preemption, horizon_us=60_000.0)
    assert result.scalars["abort_penalty_pct"] < 0.5
    assert (
        result.scalars["reserve_penalty_pct"]
        > result.scalars["abort_penalty_pct"]
    )

"""E3: dark-silicon squeeze across 45/32/22/16 nm.

The lit fraction under a fixed 80 W TDP shrinks monotonically with
scaling, while the proposed scheduler's throughput penalty stays
negligible at every node.
"""

from conftest import run_once

from repro.experiments import run_e3_tech_nodes


def test_e3_tech_nodes(benchmark):
    result = run_once(benchmark, run_e3_tech_nodes, horizon_us=60_000.0)
    lits = [row[1] for row in result.rows]
    assert lits == sorted(lits, reverse=True)  # 45nm most lit ... 16nm least
    assert result.scalars["worst_penalty_pct"] < 1.5

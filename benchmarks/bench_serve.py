"""Serving load gate: many tenants, digest identity, dedupe, latency.

This is the CI gate for the ``repro.serve`` contracts under load:

* **digest identity** (always) — every result streamed back by the
  server carries a ``result_digest`` equal to the one a direct
  :func:`repro.experiments.run_many` call produces for the same config.
  The sweep points are drawn from a small universe, so the comparison
  covers queued, coalesced *and* cache-served points in one run;
* **dedupe floor** (``--strict`` only) — the whole load draws from
  ``--universe`` unique configs, so across thousands of requested
  points the engine must actually execute almost nothing: the dedupe
  ratio ``1 - computed/points`` must be at least ``--min-dedupe``
  (default 0.9 — with coalescing and the run cache, only the first
  request for each unique point ever simulates);
* **p95 latency ceiling** (``--strict`` only) — the 95th percentile of
  per-request wall time (submit to terminal ``done`` event) must stay
  under ``--p95-ceiling-s``.  Like every wall-clock gate in this repo
  the ceiling is machine-dependent; digests are meaningful everywhere.

The server runs as a real subprocess (``python -m repro serve``) with a
run cache in its state dir; clients are asyncio tasks — ``--tenants``
tenants, each firing ``--requests`` concurrent sweep requests of
``--points`` points, honoring 429 + Retry-After backpressure with
retries (a rejected request is backpressure working, not a failure).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py             # digest gate
    PYTHONPATH=src python benchmarks/bench_serve.py --strict    # + floors
    PYTHONPATH=src python benchmarks/bench_serve.py --tenants 16

Exit status is non-zero on any digest mismatch, stream error, or (with
``--strict``) a missed floor/ceiling.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.batch import result_digest
from repro.core.system import SystemConfig
from repro.experiments.parallel import run_many
from repro.serve.client import LocalServer, ServeClient, sweep_request_doc

#: The shared sweep-point universe: every request asks for ``--points``
#: consecutive seeds out of this window, offset per (tenant, request),
#: so requests overlap heavily — the coalescing/caching workload.
BASE = {"width": 2, "height": 2, "horizon_us": 1200.0}
SEED_START = 1


def universe_configs(n: int) -> list:
    """The ``n`` unique configs the whole load is drawn from."""
    return [
        SystemConfig(**BASE, seed=SEED_START + i) for i in range(n)
    ]


def request_seeds(tenant_i: int, request_i: int, points: int, universe: int):
    """Deterministic, heavily-overlapping seed slice for one request."""
    offset = (tenant_i * 7 + request_i * 3) % universe
    return [
        SEED_START + (offset + j) % universe for j in range(points)
    ]


async def run_load(args, port: int) -> dict:
    client = ServeClient("127.0.0.1", port)
    latencies: list = []
    failures: list = []
    results: dict = {}  # digest -> result_digest (as served)
    source_counts = {"queued": 0, "coalesced": 0, "cached": 0}

    async def one_request(tenant_i: int, request_i: int) -> None:
        doc = sweep_request_doc(
            [
                {"seed": s}
                for s in request_seeds(
                    tenant_i, request_i, args.points, args.universe
                )
            ],
            tenant=f"tenant{tenant_i:02d}",
            base=BASE,
            request_id=f"t{tenant_i}r{request_i}",
        )
        started = time.perf_counter()
        try:
            events = await client.sweep(
                doc, max_retries=50, max_retry_after_s=2.0
            )
        except Exception as exc:
            failures.append(f"t{tenant_i}r{request_i}: {exc}")
            return
        latencies.append(time.perf_counter() - started)
        done = events[-1]
        if done.get("event") != "done" or done.get("errors"):
            failures.append(f"t{tenant_i}r{request_i}: bad stream {done}")
            return
        for event in events:
            if event.get("event") == "result":
                source_counts[event["source"]] = (
                    source_counts.get(event["source"], 0) + 1
                )
                previous = results.setdefault(
                    event["digest"], event["result_digest"]
                )
                if previous != event["result_digest"]:
                    failures.append(
                        f"digest {event['digest'][:12]} served two "
                        f"different results"
                    )

    await asyncio.gather(
        *[
            one_request(t, r)
            for t in range(args.tenants)
            for r in range(args.requests)
        ]
    )
    status = await client.status()
    return {
        "latencies": latencies,
        "failures": failures,
        "results": results,
        "source_counts": source_counts,
        "status": status,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tenants", type=int, default=8)
    parser.add_argument(
        "--requests", type=int, default=16,
        help="concurrent sweep requests per tenant (default 16)",
    )
    parser.add_argument(
        "--points", type=int, default=16,
        help="points per request (default 16)",
    )
    parser.add_argument(
        "--universe", type=int, default=24,
        help="unique configs the whole load draws from (default 24)",
    )
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument(
        "--strict", action="store_true",
        help="enforce the dedupe floor and p95 ceiling too",
    )
    parser.add_argument("--min-dedupe", type=float, default=0.9)
    parser.add_argument("--p95-ceiling-s", type=float, default=30.0)
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the summary document here as JSON",
    )
    args = parser.parse_args()

    total_points = args.tenants * args.requests * args.points
    print(
        f"load: {args.tenants} tenant(s) x {args.requests} request(s) "
        f"x {args.points} point(s) = {total_points} points over "
        f"{args.universe} unique configs"
    )

    # Oracle first: the universe run straight through run_many.
    direct = {}
    configs = universe_configs(args.universe)
    for config, result in zip(configs, run_many(configs, jobs=args.jobs)):
        direct[config.seed] = result_digest(result)

    workdir = Path(tempfile.mkdtemp(prefix="bench-serve-"))
    server = LocalServer(
        state_dir=str(workdir),
        jobs=args.jobs,
        extra_args=[
            "--cache-dir", str(workdir / "cache"),
            "--max-queue", "512",
            "--tenant-quota", "64",
        ],
    )
    server.start()
    started = time.perf_counter()
    try:
        load = asyncio.run(run_load(args, server.port))
    finally:
        code = server.stop()
    elapsed = time.perf_counter() - started
    print(f"load drained in {elapsed:.1f}s; server exit code {code}")

    failed = False
    if load["failures"]:
        failed = True
        for failure in load["failures"][:10]:
            print(f"FAIL: {failure}", file=sys.stderr)

    # Digest identity: every served digest matches the direct oracle.
    served_by_seed = {}
    for config in configs:
        served_by_seed[config.seed] = None
    mismatches = 0
    seen_digests = set(load["results"])
    from repro.obs.provenance import config_digest

    for config in configs:
        digest = config_digest(config)
        if digest not in load["results"]:
            continue  # the load pattern happened not to touch this point
        if load["results"][digest] != direct[config.seed]:
            mismatches += 1
            print(
                f"FAIL: seed {config.seed}: served "
                f"{load['results'][digest][:12]} != direct "
                f"{direct[config.seed][:12]}",
                file=sys.stderr,
            )
    known = {config_digest(c) for c in configs}
    stray = seen_digests - known
    if stray:
        failed = True
        print(f"FAIL: served {len(stray)} unknown digest(s)", file=sys.stderr)
    if mismatches:
        failed = True
    print(
        f"digest identity: {len(seen_digests)} unique point(s) served, "
        f"{mismatches} mismatch(es) vs direct run_many"
    )

    counters = load["status"]["engine"]["counters"]
    computed = int(counters.get("serve.computed", 0))
    n_latencies = sorted(load["latencies"])
    p95 = (
        n_latencies[int(0.95 * (len(n_latencies) - 1))]
        if n_latencies
        else float("inf")
    )
    dedupe = 1.0 - computed / max(total_points, 1)
    print(
        f"dedupe: {computed} computed / {total_points} requested "
        f"-> ratio {dedupe:.3f} (sources: {load['source_counts']})"
    )
    print(
        f"latency: p95 {p95:.2f}s over {len(n_latencies)} completed "
        f"request(s)"
    )

    if args.strict:
        if dedupe < args.min_dedupe:
            failed = True
            print(
                f"FAIL: dedupe ratio {dedupe:.3f} under the "
                f"--min-dedupe floor {args.min_dedupe}",
                file=sys.stderr,
            )
        if p95 > args.p95_ceiling_s:
            failed = True
            print(
                f"FAIL: p95 latency {p95:.2f}s over the ceiling "
                f"{args.p95_ceiling_s}s",
                file=sys.stderr,
            )
        if code != 0:
            failed = True
            print(
                f"FAIL: server drain exit code {code}", file=sys.stderr
            )

    summary = {
        "total_points": total_points,
        "unique_points_served": len(seen_digests),
        "computed": computed,
        "dedupe_ratio": dedupe,
        "p95_s": p95,
        "elapsed_s": elapsed,
        "failures": load["failures"],
        "mismatches": mismatches,
        "source_counts": load["source_counts"],
        "server_exit_code": code,
        "strict": args.strict,
    }
    if args.json:
        Path(args.json).write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n"
        )
        print(f"summary written to {args.json}")
    print("PASS" if not failed else "FAIL")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""Simulation fast-path benchmark: events/sec and result-identity gate.

This is the performance kernel smoke for the simulation fast path
(incremental power metering, indexed chip state, cached NoC routing).
It measures two things on the default-scale E2 workload (8x8 mesh at
16 nm, 60 ms horizon):

* **wall clock** of the E2 throughput-penalty runner across four seeds
  (16 simulations), compared against the pre-optimisation baseline
  recorded in ``BENCH_perf.json``;
* **events/sec** of a single E2-style power-aware run (``events_fired``
  divided by its wall time) — the per-simulation kernel throughput.

It also guards *correctness*: the fast path must be an exact refactor,
so the E2 result rows are hashed (full-precision ``repr``) and compared
byte-for-byte against the digest recorded with the pre-optimisation
code, and — when the parallel harness is available — a ``jobs=4`` run
must produce the identical digest as the serial run.

The observability layer (``repro.obs``) rides the same gate: the sweep
is re-run with the default journal + phase profiler installed (plus a
debug-level digest cross-check), the rows must stay byte-identical,
and the wall overhead is reported (gated at a 10% tripwire only under
``--strict``; single-pair ratios are noise-dominated).
``--obs-artifacts DIR`` dumps a sample journal and profile summary
for CI artifact upload.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf_kernel.py                 # compare vs baseline
    PYTHONPATH=src python benchmarks/bench_perf_kernel.py --write-baseline
    PYTHONPATH=src python benchmarks/bench_perf_kernel.py --strict        # also require >= 3x
    PYTHONPATH=src python benchmarks/bench_perf_kernel.py --horizon-us 12000  # CI smoke scale

Exit status is non-zero on any digest mismatch (and, with ``--strict``,
when the speedup floor is missed).  Speedup numbers are only meaningful
on the machine that recorded the baseline; digests are meaningful
everywhere.
"""

from __future__ import annotations

import argparse
import hashlib
import inspect
import json
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.core.system import run_system
from repro.experiments.runners import DEFAULT_CONFIG, run_e2_throughput_penalty

#: Seeds of the default-scale E2 sweep (4 seeds x 4 policies = 16 runs).
SEEDS = (11, 23, 47, 61)

#: Lockstep batch sizes timed by the batch-kernel section.
BATCH_SIZES = (1, 4, 16, 64)
#: Batch lane seeds are disjoint from the sweep seeds: lane i runs
#: ``BATCH_SEED_START + BATCH_SEED_STEP * i``.
BATCH_SEED_START = 101
BATCH_SEED_STEP = 7

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_perf.json"


def rows_digest(results) -> str:
    """Full-precision digest of the experiment rows (order-sensitive).

    ``repr`` of a float is exact (round-trips the bit pattern), so two
    digests match iff every cell of every row is byte-identical.
    """
    h = hashlib.sha256()
    for result in results:
        h.update(result.experiment_id.encode())
        for row in result.rows:
            h.update(repr(row).encode())
    return h.hexdigest()


def _e2_kwargs(horizon_us: float, seed: int, jobs) -> dict:
    kwargs = {"horizon_us": horizon_us, "seed": seed}
    # The ``jobs`` parameter only exists once the parallel harness is in;
    # tolerate its absence so the same script records the pre-PR baseline.
    if jobs is not None and "jobs" in inspect.signature(
        run_e2_throughput_penalty
    ).parameters:
        kwargs["jobs"] = jobs
    return kwargs


def run_e2_sweep(horizon_us: float, jobs=None):
    """Run the E2 runner over all benchmark seeds; return (results, wall_s)."""
    t0 = time.perf_counter()
    results = [
        run_e2_throughput_penalty(**_e2_kwargs(horizon_us, seed, jobs))
        for seed in SEEDS
    ]
    return results, time.perf_counter() - t0


def events_per_second(horizon_us: float) -> dict:
    """Kernel throughput of one default E2-style power-aware run."""
    config = replace(DEFAULT_CONFIG, horizon_us=horizon_us, seed=SEEDS[0])
    t0 = time.perf_counter()
    result = run_system(config)
    wall = time.perf_counter() - t0
    return {
        "events_fired": result.events_fired,
        "wall_s": wall,
        "events_per_s": result.events_fired / wall if wall > 0 else 0.0,
    }


def batch_seeds(n: int) -> list:
    """The first ``n`` lane seeds of the batch-kernel protocol."""
    return [BATCH_SEED_START + BATCH_SEED_STEP * i for i in range(n)]


def batch_kernels(
    horizon_us: float, sizes=BATCH_SIZES, repeats: int = 1
) -> dict:
    """Lockstep batch-kernel throughput per batch size.

    Protocol: arrival traces for every lane seed are pre-generated
    untimed (the scalar kernel enjoys the same warmth — its seed's
    trace is memoized by the sweep that precedes it), one warm-up batch
    runs untimed, then each size is timed ``repeats`` times keeping the
    best rate (noise only ever slows a run down, so the best repeat is
    the tightest bound on the true kernel speed).
    """
    from repro.batch import run_batch
    from repro.core.system import ManycoreSystem

    config = replace(DEFAULT_CONFIG, horizon_us=horizon_us)
    seeds = batch_seeds(max(sizes))
    for seed in seeds:
        ManycoreSystem(replace(config, seed=seed)).generate_arrivals()
    run_batch(config, seeds[:1])  # warm the batch path itself
    out = {}
    for size in sizes:
        best = None
        for _ in range(max(repeats, 1)):
            t0 = time.perf_counter()
            results = run_batch(config, seeds[:size])
            wall = time.perf_counter() - t0
            events = sum(r.events_fired for r in results)
            rate = events / wall if wall > 0 else 0.0
            if best is None or rate > best["events_per_s"]:
                best = {
                    "events_fired": events,
                    "wall_s": wall,
                    "events_per_s": rate,
                }
        out[str(size)] = best
    return out


def _batch_section(batch: dict, repeats: int) -> dict:
    """The ``batch`` baseline entry (protocol provenance + timings)."""
    return {
        "seed_start": BATCH_SEED_START,
        "seed_step": BATCH_SEED_STEP,
        "repeats": repeats,
        "sizes": batch,
    }


def obs_overhead(horizon_us: float, pairs: int = 3) -> dict:
    """Digest identity and wall overhead of enabled observability.

    Runs ``pairs`` alternating (obs-off, obs-on) serial sweeps with the
    *default* (info-level) journal plus profiler — the configuration the
    overhead budget applies to — and reports the median of the per-pair
    wall ratios (single ratios are dominated by machine noise).  A final
    debug-level sweep cross-checks the digest on the highest-volume emit
    path (core transitions + mapping blockages, ~4x the event count),
    whose emit cost alone is ~5% at full scale and therefore outside the
    default budget.  The digest checks are the hard invariant either
    way: journaling and profiling are read-only, so the E2 rows must be
    byte-identical.
    """
    from repro.obs import Journal, PhaseProfiler, configure

    off_digest = on_digest = None
    ratios = []
    journal = profiler = None
    try:
        for _ in range(pairs):
            configure()
            results, w_off = run_e2_sweep(horizon_us)
            off_digest = rows_digest(results)
            journal = Journal()
            profiler = PhaseProfiler()
            configure(journal, profiler)
            results, w_on = run_e2_sweep(horizon_us)
            on_digest = rows_digest(results)
            ratios.append(w_on / w_off if w_off > 0 else float("inf"))
        debug_journal = Journal(level="debug")
        configure(debug_journal, PhaseProfiler())
        results, _ = run_e2_sweep(horizon_us)
        debug_digest = rows_digest(results)
    finally:
        configure()
    ratios.sort()
    median = ratios[len(ratios) // 2]
    return {
        "digest_match": off_digest == on_digest == debug_digest,
        "overhead_pct": (median - 1.0) * 100.0,
        # The cleanest pair is the tightest upper bound on the true
        # overhead: noise inflates a ratio far more often than it
        # deflates one, so min(ratios) converges from above as pairs
        # are added while the median stays noise-dominated.
        "best_pct": (ratios[0] - 1.0) * 100.0,
        "ratios": ratios,
        "journal_events": len(journal) if journal is not None else 0,
        "debug_events": len(debug_journal),
        "profile": profiler.summary() if profiler is not None else {},
    }


def write_obs_artifacts(directory: str, horizon_us: float) -> None:
    """Write a sample journal + profile summary for CI artifact upload."""
    from repro.obs import Journal, PhaseProfiler
    from repro.obs.provenance import digest_of

    out = Path(directory)
    out.mkdir(parents=True, exist_ok=True)
    config = replace(DEFAULT_CONFIG, horizon_us=horizon_us, seed=SEEDS[0])
    journal = Journal()
    profiler = PhaseProfiler()
    result = run_system(config, journal=journal, profiler=profiler)
    journal.write_jsonl(str(out / "sample_journal.jsonl"))
    (out / "profile_summary.json").write_text(
        json.dumps(
            {
                "workload": "one E2-style power-aware run",
                "horizon_us": horizon_us,
                "seed": SEEDS[0],
                "summary_digest": digest_of(sorted(result.summary().items())),
                "journal_events": len(journal),
                "phases": profiler.summary(),
            },
            indent=2,
        )
        + "\n"
    )
    print(
        f"obs artifacts written to {out} "
        f"({len(journal)} journal events, {len(profiler.summary())} phases)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current timings/digest as the comparison baseline",
    )
    parser.add_argument(
        "--write-batch-baseline",
        action="store_true",
        help=(
            "update only the 'batch' section of the existing baseline, "
            "preserving the recorded scalar numbers verbatim"
        ),
    )
    parser.add_argument(
        "--batch-repeats",
        type=int,
        default=1,
        help="timed repeats per batch size, best kept (default 1)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail unless wall-clock speedup vs. the baseline is >= 3x",
    )
    parser.add_argument(
        "--horizon-us",
        type=float,
        default=60_000.0,
        help="simulation horizon (default: the full 60 ms scale)",
    )
    parser.add_argument("--jobs", type=int, default=4, help="parallel jobs to cross-check")
    parser.add_argument(
        "--obs-pairs",
        type=int,
        default=1,
        help="(obs-off, obs-on) sweep pairs for the overhead median (default 1)",
    )
    parser.add_argument(
        "--obs-artifacts",
        metavar="DIR",
        help="write a sample journal (JSONL) and profile summary (JSON) to DIR",
    )
    args = parser.parse_args(argv)

    print(f"E2 sweep: 8x8 mesh, {args.horizon_us / 1000:g} ms, seeds {SEEDS}")
    results, wall = run_e2_sweep(args.horizon_us)
    digest = rows_digest(results)
    kernel = events_per_second(args.horizon_us)
    print(f"serial wall: {wall:.2f} s   digest: {digest[:16]}...")
    print(
        f"kernel: {kernel['events_fired']} events in {kernel['wall_s']:.2f} s "
        f"-> {kernel['events_per_s']:.0f} events/s"
    )
    batch = batch_kernels(args.horizon_us, repeats=args.batch_repeats)
    for size in BATCH_SIZES:
        entry = batch[str(size)]
        print(
            f"batch B={size:>2}: {entry['events_fired']} events in "
            f"{entry['wall_s']:.2f} s -> {entry['events_per_s']:.0f} events/s"
        )

    if args.write_batch_baseline:
        if not BASELINE_PATH.exists():
            print(
                f"no baseline at {BASELINE_PATH}; run --write-baseline first",
                file=sys.stderr,
            )
            return 1
        data = json.loads(BASELINE_PATH.read_text())
        data["batch"] = _batch_section(batch, args.batch_repeats)
        BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")
        print(f"batch section updated in {BASELINE_PATH} (scalar keys kept)")
        return 0

    if args.write_baseline:
        BASELINE_PATH.write_text(
            json.dumps(
                {
                    "workload": "E2 throughput penalty, 8x8 @ 16nm",
                    "horizon_us": args.horizon_us,
                    "seeds": list(SEEDS),
                    "wall_s": wall,
                    "rows_digest": digest,
                    "kernel": kernel,
                    "batch": _batch_section(batch, args.batch_repeats),
                },
                indent=2,
            )
            + "\n"
        )
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    failures = []

    # Serial vs. parallel identity (post-fast-path only).
    if "jobs" in inspect.signature(run_e2_throughput_penalty).parameters:
        par_results, par_wall = run_e2_sweep(args.horizon_us, jobs=args.jobs)
        par_digest = rows_digest(par_results)
        print(f"--jobs {args.jobs} wall: {par_wall:.2f} s   digest: {par_digest[:16]}...")
        if par_digest != digest:
            failures.append("serial and parallel E2 rows differ")
        else:
            print("serial == parallel rows: OK")
    else:
        print("parallel harness not present; skipping jobs cross-check")

    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with --write-baseline first")
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())
    if baseline["horizon_us"] == args.horizon_us and baseline["seeds"] == list(SEEDS):
        if baseline["rows_digest"] != digest:
            failures.append("E2 rows differ from the pre-optimisation baseline")
        else:
            print("rows byte-identical to the recorded baseline: OK")
        speedup = baseline["wall_s"] / wall if wall > 0 else float("inf")
        kernel_x = (
            kernel["events_per_s"] / baseline["kernel"]["events_per_s"]
            if baseline["kernel"]["events_per_s"] > 0
            else float("inf")
        )
        print(
            f"speedup vs baseline: {speedup:.2f}x wall "
            f"({baseline['wall_s']:.2f} s -> {wall:.2f} s), "
            f"{kernel_x:.2f}x events/s"
        )
        if args.strict and speedup < 3.0:
            failures.append(f"speedup {speedup:.2f}x below the 3x floor")
        scalar_rate = baseline["kernel"]["events_per_s"]
        if scalar_rate > 0:
            for size in BATCH_SIZES:
                rate = batch[str(size)]["events_per_s"]
                print(
                    f"batch B={size:>2} vs recorded scalar kernel: "
                    f"{rate / scalar_rate:.2f}x events/s"
                )
    else:
        print("baseline recorded at a different scale; skipping the comparison")

    # Observability must be read-only: same rows with journal+profiler on.
    obs_pairs = max(args.obs_pairs, 3) if args.strict else args.obs_pairs
    obs = obs_overhead(args.horizon_us, pairs=obs_pairs)
    print(
        f"obs enabled: digest match={obs['digest_match']}, "
        f"overhead {obs['overhead_pct']:+.1f}% median / {obs['best_pct']:+.1f}% best "
        f"(pair ratios {', '.join(f'{r:.3f}' for r in obs['ratios'])}), "
        f"{obs['journal_events']} journal events "
        f"({obs['debug_events']} at debug level)"
    )
    if not obs["digest_match"]:
        failures.append("E2 rows differ with observability enabled")
    else:
        print("rows byte-identical with observability enabled: OK")
    # Wall ratios swing +/-15% pair to pair on a noisy machine, so the
    # overhead budget (3% target, 10% tripwire) is only gated in --strict
    # runs, on the *cleanest* of >= 3 pairs — the tightest upper bound on
    # the true cost that a noisy host can produce.
    if args.strict and obs["best_pct"] > 10.0:
        failures.append(
            f"observability overhead {obs['best_pct']:+.1f}% (best of "
            f"{obs_pairs} pairs) above the 10% tripwire"
        )

    if args.obs_artifacts:
        write_obs_artifacts(args.obs_artifacts, args.horizon_us)

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

"""Campaign resume-identity smoke: kill, resume, compare digests.

This is the CI gate for the two contracts ``repro.campaign`` makes:

* **crash tolerance** — a campaign killed mid-run (simulated with the
  deterministic ``interrupt_after`` hook) loses none of its
  checkpointed results;
* **resume identity** — resuming the killed campaign and letting it
  finish produces an ``aggregate_digest`` byte-identical to a straight
  uninterrupted run of the same spec.

The script drives the real CLI (``python -m repro campaign ...``), so
argument plumbing, exit codes and the manifest path are exercised too:

1. ``campaign run`` on the small smoke spec with ``--interrupt-after``
   set mid-grid — must exit with code 3 (interrupted) and leave a
   partial ``results.jsonl`` behind;
2. ``campaign resume`` on the same directory — must exit 0;
3. ``campaign run`` of the same spec into a *fresh* directory, straight
   through;
4. the two manifests' ``aggregate_digest`` values must be equal.

Along the way the telemetry status surface is exercised too: after the
kill, ``campaign status`` must exit 0 and report the campaign as
``interrupted``; after the resume it must report ``complete``.

``--artifacts DIR`` copies the resumed campaign's manifest, checkpoint
store and telemetry exports (``status.json``/``telemetry.prom``/
``telemetry.json``) there for CI artifact upload.  Exit status is
non-zero on any step failure or digest mismatch.

Usage::

    PYTHONPATH=src python benchmarks/campaign_smoke.py --jobs 2
    PYTHONPATH=src python benchmarks/campaign_smoke.py --artifacts out/
"""

from __future__ import annotations

import argparse
import json
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path

SPEC = Path(__file__).resolve().parent / "campaign_smoke_spec.json"

#: Interrupt after this many checkpointed results (the smoke spec plans
#: 2 cells x 3 seeds = 6 points, so this kills the campaign mid-grid).
INTERRUPT_AFTER = 3


def _cli(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
    )


def _step(name: str, proc: subprocess.CompletedProcess, want_rc: int) -> None:
    status = "ok" if proc.returncode == want_rc else "FAIL"
    print(f"[{status}] {name}: exit {proc.returncode} (want {want_rc})")
    if proc.returncode != want_rc:
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        sys.exit(1)


def _aggregate(campaign_dir: Path) -> str:
    manifest = json.loads((campaign_dir / "manifest.json").read_text())
    return manifest["aggregate_digest"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", default="2", help="worker processes")
    parser.add_argument(
        "--artifacts", default=None,
        help="directory to copy the campaign manifest + store into",
    )
    args = parser.parse_args()

    workdir = Path(tempfile.mkdtemp(prefix="campaign-smoke-"))
    interrupted = workdir / "interrupted"
    straight = workdir / "straight"
    common = ("--jobs", args.jobs, "--backoff-s", "0")

    proc = _cli(
        "campaign", "run", str(SPEC), "--dir", str(interrupted),
        "--interrupt-after", str(INTERRUPT_AFTER), *common,
    )
    _step("run (killed mid-campaign)", proc, want_rc=3)

    results = interrupted / "results.jsonl"
    n_kept = len(results.read_text().splitlines()) if results.exists() else 0
    print(f"[ok]   checkpoint survived the kill: {n_kept} record(s)")
    if n_kept != INTERRUPT_AFTER:
        print(
            f"FAIL: expected {INTERRUPT_AFTER} checkpointed records, "
            f"found {n_kept}",
            file=sys.stderr,
        )
        return 1

    proc = _cli("campaign", "status", str(interrupted))
    _step("status after the kill", proc, want_rc=0)
    if "[interrupted]" not in proc.stdout:
        print(
            "FAIL: status after the kill does not say interrupted:\n"
            + proc.stdout,
            file=sys.stderr,
        )
        return 1

    _step(
        "resume to completion",
        _cli("campaign", "resume", str(interrupted), *common),
        want_rc=0,
    )

    proc = _cli("campaign", "status", str(interrupted))
    _step("status after the resume", proc, want_rc=0)
    if "[complete]" not in proc.stdout:
        print(
            "FAIL: status after the resume does not say complete:\n"
            + proc.stdout,
            file=sys.stderr,
        )
        return 1
    _step(
        "uninterrupted control run",
        _cli("campaign", "run", str(SPEC), "--dir", str(straight), *common),
        want_rc=0,
    )

    resumed_digest = _aggregate(interrupted)
    straight_digest = _aggregate(straight)
    if resumed_digest != straight_digest:
        print(
            f"FAIL: resume identity broken:\n"
            f"  interrupted+resumed: {resumed_digest}\n"
            f"  uninterrupted:       {straight_digest}",
            file=sys.stderr,
        )
        return 1
    print(f"[ok]   resume identity: aggregate digest {resumed_digest}")

    if args.artifacts:
        dest = Path(args.artifacts)
        dest.mkdir(parents=True, exist_ok=True)
        for name in (
            "manifest.json",
            "results.jsonl",
            "spec.json",
            "status.json",
            "telemetry.prom",
            "telemetry.json",
        ):
            shutil.copy(interrupted / name, dest / name)
        print(f"[ok]   artifacts copied to {dest}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""E4: test frequency adapts to per-core stress (TC'16 adaptivity claim).

Cores that executed more workload accumulate criticality faster and are
re-tested more often: tests-per-core correlates positively with busy time.
"""

from conftest import run_once

from repro.experiments import run_e4_adaptivity


def test_e4_adaptivity(benchmark):
    result = run_once(benchmark, run_e4_adaptivity, horizon_us=60_000.0)
    assert result.scalars["pearson_busy_vs_tests"] > 0.4
    rows = {r[0]: r for r in result.rows}
    assert rows["Q4"][2] > rows["Q1"][2]  # busiest quartile tested more

"""Benchmark-harness helpers.

Every benchmark runs its experiment exactly once via ``benchmark.pedantic``
(a full experiment is many simulations already; repeating it buys nothing),
prints the reconstructed paper table/figure, and asserts the claim the
experiment validates so a regression in the reproduction fails the bench.
"""

from __future__ import annotations


def run_once(benchmark, runner, **kwargs):
    """Run ``runner(**kwargs)`` once under pytest-benchmark and print it."""
    result = benchmark.pedantic(runner, kwargs=kwargs, rounds=1, iterations=1)
    print()
    print(result.render())
    return result

"""E9: PID dynamic power budgeting vs. naive TDP scheduling (ICCD'14).

The substrate validation: fine-grained DVFS under a PID budget beats the
worst-case "naive TDP" core-count policy by well over the paper's 43%.
"""

from conftest import run_once

from repro.experiments import run_e9_pid_ablation


def test_e9_pid_ablation(benchmark):
    result = run_once(benchmark, run_e9_pid_ablation, horizon_us=60_000.0)
    assert result.scalars["pid_boost_over_worst_case_pct"] > 43.0
    rows = {r[0]: r for r in result.rows}
    assert rows["pid"][3] == 0.0   # PID honours the cap

"""Fast-path regression tests.

The simulation fast path (incremental power meter, indexed chip state,
cached NoC routing, bisected DVFS selection, parallel sweeps) is an exact
refactor: every shortcut must be observably identical to the reference
algorithm it replaced.  These tests pin that equivalence directly instead
of relying only on the end-to-end digests.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.model import NocModel
from repro.noc.routing import link_id, xy_link_ids, xy_links
from repro.noc.topology import Mesh
from repro.platform.chip import Chip
from repro.platform.core import CoreState
from repro.power.budget import PowerBudget
from repro.power.manager import PIDPowerManager
from repro.power.meter import PowerMeter

CHANNELS = ("workload", "test", "leakage", "noc")
STATES = (CoreState.IDLE, CoreState.BUSY, CoreState.TESTING, CoreState.FAULTY)


def _assert_breakdown_matches_scan(meter: PowerMeter) -> None:
    fast = meter.breakdown()
    reference = meter.scan_breakdown()
    for channel in CHANNELS:
        assert getattr(fast, channel) == pytest.approx(
            getattr(reference, channel), abs=1e-9
        ), channel


# ----------------------------------------------------------------------
# Incremental power accounting == full scan
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=15),   # core
            st.integers(min_value=0, max_value=4),    # op kind
            st.integers(min_value=0, max_value=7),    # parameter
        ),
        min_size=1,
        max_size=60,
    )
)
def test_incremental_breakdown_matches_scan_under_random_transitions(ops):
    chip = Chip.build(4, 4, "16nm", tdp_w=20.0)
    meter = PowerMeter(chip)
    table = chip.vf_table
    for core_idx, kind, param in ops:
        core = chip.cores[core_idx]
        if kind == 0:
            core.state = STATES[param % len(STATES)]
        elif kind == 1:
            core.level = table.clamp(param)
        elif kind == 2:
            meter.set_core_activity(core, param / 4.0)
        elif kind == 3:
            meter.set_core_activity(core, None)
        else:
            core.leak_factor = 1.0 + param * 0.05
        _assert_breakdown_matches_scan(meter)


def test_builtin_audit_passes_under_churn(chip44):
    meter = PowerMeter(chip44, verify_every_n=1)
    for step, core in enumerate(chip44):
        core.state = CoreState.BUSY if step % 2 == 0 else CoreState.TESTING
        meter.set_core_activity(core, 0.5 + step * 0.1)
        meter.breakdown()
        core.state = CoreState.IDLE
        meter.breakdown()
    assert meter.audits_passed >= 2 * len(chip44.cores)


def test_stale_activity_cleared_when_core_retires(chip44):
    meter = PowerMeter(chip44)
    core = chip44.cores[5]
    core.state = CoreState.BUSY
    meter.set_core_activity(core, 3.0)
    assert meter.breakdown().workload > 0.0
    core.state = CoreState.FAULTY
    assert meter.breakdown().workload == 0.0
    # The 3.0 factor must not leak into the core's next life: it restarts
    # on the default activity until the engine sets a fresh factor.
    core.state = CoreState.BUSY
    node = chip44.node
    assert meter.core_dynamic(core) == node.dynamic_power(
        core.level.vdd, core.level.f_mhz, meter.default_activity
    )
    _assert_breakdown_matches_scan(meter)


def test_stale_activity_cleared_on_power_gating(chip44):
    meter = PowerMeter(chip44)
    core = chip44.cores[0]
    core.state = CoreState.TESTING
    meter.set_core_activity(core, 2.0)
    core.state = CoreState.IDLE
    assert core.core_id not in meter._core_activity
    _assert_breakdown_matches_scan(meter)


# ----------------------------------------------------------------------
# Indexed chip state
# ----------------------------------------------------------------------
def test_free_count_tracks_direct_owner_and_state_writes(chip44):
    def check():
        free = chip44.free_cores()
        assert chip44.n_free_cores() == len(free)
        assert [c.core_id for c in free] == sorted(c.core_id for c in free)

    assert chip44.n_free_cores() == 16
    core = chip44.cores[3]
    core.owner_app = 7
    assert chip44.n_free_cores() == 15
    check()
    core.owner_app = 9  # handoff between owners: still not free
    assert chip44.n_free_cores() == 15
    core.state = CoreState.BUSY
    assert chip44.n_free_cores() == 15
    core.owner_app = None  # busy but unowned: still not free
    assert chip44.n_free_cores() == 15
    check()
    core.state = CoreState.IDLE
    assert chip44.n_free_cores() == 16
    check()


def test_mutation_counter_advances_on_every_observable_change(chip44):
    core = chip44.cores[0]
    table = chip44.vf_table
    before = chip44.mutations
    core.state = CoreState.BUSY
    assert chip44.mutations > before

    before = chip44.mutations
    other = table[0] if core.level.index != 0 else table[1]
    core.level = other
    assert chip44.mutations > before

    before = chip44.mutations
    core.leak_factor = core.leak_factor * 1.5
    assert chip44.mutations > before

    before = chip44.mutations
    core.owner_app = 42
    assert chip44.mutations > before

    # No-op writes must not advance the counter (they would defeat the
    # scheduler's blocked-mapping memo).
    before = chip44.mutations
    core.state = CoreState.BUSY
    core.owner_app = 42
    assert chip44.mutations == before


# ----------------------------------------------------------------------
# Cached NoC routing
# ----------------------------------------------------------------------
def test_link_ids_are_bijective_and_route_consistent():
    mesh = Mesh(5, 4)
    seen = {}
    for src in mesh.positions():
        for dst in mesh.positions():
            links = xy_links(mesh, src, dst)
            ids = xy_link_ids(mesh, src, dst)
            assert len(ids) == len(links)
            for link, lid in zip(links, ids):
                assert link_id(mesh, link) == lid
                assert seen.setdefault(lid, link) == link


def test_link_load_queries_by_position_pair():
    mesh = Mesh(4, 4)
    noc = NocModel(mesh)
    noc.begin_transfer((0, 0), (3, 0), 10.0)
    for link in xy_links(mesh, (0, 0), (3, 0)):
        assert noc.link_load(link) == 10.0
    noc.end_transfer((0, 0), (3, 0), 10.0)
    for link in xy_links(mesh, (0, 0), (3, 0)):
        assert noc.link_load(link) == 0.0


# ----------------------------------------------------------------------
# Simulator heap hygiene
# ----------------------------------------------------------------------
def test_pending_and_compaction_after_mass_cancellation(sim):
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(200)]
    fired = []
    sim.schedule(500.0, fired.append, "survivor")
    assert sim.pending() == 201
    for event in events:
        event.cancel()
    assert sim.pending() == 1
    # The cancelled bulk must have been physically dropped, not merely
    # flagged: otherwise long runs leak memory and slow every push.
    assert sim.heap_compactions >= 1
    assert len(sim._heap) < 100
    sim.run()
    assert fired == ["survivor"]
    assert sim.now == 500.0


# ----------------------------------------------------------------------
# Bisected DVFS start-level selection == linear scan
# ----------------------------------------------------------------------
def test_start_level_bisect_matches_linear_scan(chip44):
    meter = PowerMeter(chip44)
    for cap in (0.5, 2.0, 6.0, 20.0, 200.0):
        manager = PIDPowerManager(chip44, meter, PowerBudget(cap))
        assert manager._ladder_sorted
        for n_busy in (0, 3, 9, 15):
            for core, _ in zip(chip44, range(n_busy)):
                core.state = CoreState.BUSY
            target = chip44.cores[15]
            target.state = CoreState.IDLE
            for activity in (0.0, 0.25, 1.0, 1.8):
                fast = manager.start_level_for(target, activity)
                manager._ladder_sorted = False
                reference = manager.start_level_for(target, activity)
                manager._ladder_sorted = True
                assert fast is reference
            for core in chip44:
                core.state = CoreState.IDLE


# ----------------------------------------------------------------------
# Parallel sweep executor == serial loop
# ----------------------------------------------------------------------
def test_run_many_parallel_rows_identical_to_serial():
    from repro.experiments.runners import run_e2_throughput_penalty

    serial = run_e2_throughput_penalty(horizon_us=2_000.0, seed=11, jobs=None)
    parallel = run_e2_throughput_penalty(horizon_us=2_000.0, seed=11, jobs=2)
    assert repr(serial.rows) == repr(parallel.rows)
    assert serial.scalars == parallel.scalars


def test_run_many_rejects_negative_jobs():
    from repro.experiments.parallel import run_many

    with pytest.raises(ValueError):
        run_many([], jobs=-1)

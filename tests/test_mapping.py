"""Tests for baseline runtime mappers and shared placement machinery."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.mapping.base import (
    MappingContext,
    assign_tasks_near,
    pick_first_node,
    square_region_score,
)
from repro.mapping.baselines import ContiguousMapper, RandomFreeMapper, ScatterMapper
from repro.noc.topology import Mesh
from repro.workload.application import ApplicationGraph, ApplicationInstance
from repro.workload.generator import PROFILE_PRESETS, TaskGraphGenerator
from repro.workload.task import Edge, Task


def make_ctx(chip, now=0.0, available=None):
    mesh = Mesh(chip.width, chip.height)
    cores = available if available is not None else chip.free_cores()
    return MappingContext(chip, mesh, now, cores)


def chain_app(n=4):
    tasks = [Task(i, ops=100.0) for i in range(n)]
    edges = [Edge(i, i + 1, 10.0) for i in range(n - 1)]
    return ApplicationInstance(1, ApplicationGraph("chain", tasks, edges), 0.0)


# ----------------------------------------------------------------------
# Shared machinery
# ----------------------------------------------------------------------
def test_square_region_score_counts_neighbourhood(chip44):
    ctx = make_ctx(chip44)
    center = chip44.core_at(1, 1)
    corner = chip44.core_at(0, 0)
    assert square_region_score(ctx, center, 1) == 9
    assert square_region_score(ctx, corner, 1) == 4


def test_square_region_score_ignores_unavailable(chip44):
    available = [c for c in chip44.free_cores() if c.core_id != 0]
    ctx = make_ctx(chip44, available=available)
    corner = chip44.core_at(0, 0)
    assert square_region_score(ctx, corner, 1) == 3


def test_pick_first_node_prefers_freest_region(chip44):
    # Remove the whole left half: the best first node sits on the right.
    available = [c for c in chip44.free_cores() if c.x >= 2]
    ctx = make_ctx(chip44, available=available)
    first = pick_first_node(ctx, n_tasks=4)
    assert first.x >= 2


def test_pick_first_node_none_when_empty(chip44):
    ctx = make_ctx(chip44, available=[])
    assert pick_first_node(ctx, 4) is None


def test_pick_first_node_extra_cost_biases_choice(chip44):
    ctx = make_ctx(chip44)
    shunned = pick_first_node(ctx, 4)
    # Penalise the previously chosen node heavily; a different one wins.
    def cost(now, core):
        return 100.0 if core.core_id == shunned.core_id else 0.0
    other = pick_first_node(ctx, 4, extra_cost=cost)
    assert other.core_id != shunned.core_id


def test_assign_tasks_near_full_and_injective(chip44):
    app = chain_app(6)
    ctx = make_ctx(chip44)
    first = pick_first_node(ctx, 6)
    placement = assign_tasks_near(app, ctx, first)
    assert set(placement) == set(app.graph.tasks)
    assert len(set(placement.values())) == 6
    assert set(placement.values()) <= ctx.available_ids


def test_assign_tasks_near_contiguity(chip44):
    """Adjacent tasks land within a couple of hops of each other."""
    app = chain_app(6)
    ctx = make_ctx(chip44)
    first = pick_first_node(ctx, 6)
    placement = assign_tasks_near(app, ctx, first)
    for edge in app.graph.edges:
        a = chip44.core(placement[edge.src]).position
        b = chip44.core(placement[edge.dst]).position
        assert Mesh.manhattan(a, b) <= 3


def test_assign_tasks_near_insufficient_cores(chip44):
    app = chain_app(6)
    ctx = make_ctx(chip44, available=chip44.free_cores()[:3])
    first = ctx.available[0]
    assert assign_tasks_near(app, ctx, first) is None


# ----------------------------------------------------------------------
# Baseline mappers
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "mapper",
    [ContiguousMapper(), ScatterMapper(), RandomFreeMapper(random.Random(1))],
    ids=["contiguous", "scatter", "random"],
)
def test_mappers_produce_valid_placements(chip44, mapper):
    app = chain_app(5)
    ctx = make_ctx(chip44)
    placement = mapper.map_application(app, ctx)
    assert placement is not None
    assert set(placement) == set(app.graph.tasks)
    assert len(set(placement.values())) == 5
    assert set(placement.values()) <= ctx.available_ids


@pytest.mark.parametrize(
    "mapper",
    [ContiguousMapper(), ScatterMapper(), RandomFreeMapper(random.Random(1))],
    ids=["contiguous", "scatter", "random"],
)
def test_mappers_return_none_when_region_too_small(chip44, mapper):
    app = chain_app(10)
    ctx = make_ctx(chip44, available=chip44.free_cores()[:4])
    assert mapper.map_application(app, ctx) is None


def test_scatter_uses_core_id_order(chip44):
    app = chain_app(3)
    ctx = make_ctx(chip44)
    placement = ScatterMapper().map_application(app, ctx)
    assert sorted(placement.values()) == [0, 1, 2]


def test_contiguous_beats_scatter_on_hops(chip88):
    """Contiguity claim: fewer total edge hops than id-order scatter."""
    gen = TaskGraphGenerator(random.Random(5))
    graph = gen.generate(PROFILE_PRESETS["medium"])
    app = ApplicationInstance(1, graph, 0.0)
    # Make the free set patchy so scatter really scatters.
    available = [c for c in chip88.free_cores() if (c.core_id * 7) % 3 != 0]
    ctx = make_ctx(chip88, available=available)

    def hops(placement):
        return sum(
            Mesh.manhattan(
                chip88.core(placement[e.src]).position,
                chip88.core(placement[e.dst]).position,
            )
            for e in graph.edges
        )

    contiguous = ContiguousMapper().map_application(app, ctx)
    scatter = ScatterMapper().map_application(app, ctx)
    assert hops(contiguous) <= hops(scatter)


def test_random_mapper_deterministic_with_seed(chip44):
    app = chain_app(5)
    a = RandomFreeMapper(random.Random(3)).map_application(app, make_ctx(chip44))
    b = RandomFreeMapper(random.Random(3)).map_application(app, make_ctx(chip44))
    assert a == b


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=1000))
def test_contiguous_placement_always_valid(seed):
    from repro.platform.chip import Chip

    chip = Chip.build(6, 6, "16nm", tdp_w=40.0)
    gen = TaskGraphGenerator(random.Random(seed))
    graph = gen.generate(PROFILE_PRESETS["medium"])
    app = ApplicationInstance(1, graph, 0.0)
    rng = random.Random(seed + 1)
    available = [c for c in chip.free_cores() if rng.random() < 0.7]
    ctx = make_ctx(chip, available=available)
    placement = ContiguousMapper().map_application(app, ctx)
    if placement is None:
        assert len(graph) > len(available)
    else:
        assert len(set(placement.values())) == len(graph)
        assert set(placement.values()) <= {c.core_id for c in available}

"""Tests for the proposed power-aware test scheduler."""

import pytest

from repro.aging.model import AgingModel
from repro.core.criticality import CriticalityParameters, TestCriticality
from repro.core.scheduler import PowerAwareTestScheduler
from repro.platform.core import CoreState
from repro.power.budget import PowerBudget
from repro.power.meter import PowerMeter
from repro.testing.runner import TestRunner
from repro.testing.sbst import default_library


def make_rig(sim, chip, tdp_w, **sched_kwargs):
    meter = PowerMeter(chip)
    budget = PowerBudget(tdp_w, guard_fraction=0.0)
    runner = TestRunner(sim, chip, meter, default_library(), AgingModel(chip.node))
    criticality = TestCriticality(CriticalityParameters())
    sched_kwargs.setdefault("min_interval_us", 0.0)
    scheduler = PowerAwareTestScheduler(
        chip, runner, meter, budget, criticality=criticality, **sched_kwargs
    )
    return meter, budget, runner, scheduler


def make_due(chip, core_ids, stress=50.0):
    for cid in core_ids:
        chip.core(cid).stress_since_test = stress


def test_no_candidates_before_threshold(sim, chip44):
    _, _, runner, sched = make_rig(sim, chip44, 20.0)
    sched.tick(now=10.0, dt=100.0)  # fresh cores: criticality ~ 0
    assert runner.stats.started == 0


def test_due_core_gets_tested_with_headroom(sim, chip44):
    _, _, runner, sched = make_rig(sim, chip44, 20.0)
    make_due(chip44, [5])
    sched.tick(now=10.0, dt=100.0)
    assert runner.stats.started == 1
    assert chip44.core(5).state is CoreState.TESTING


def test_candidates_ranked_by_criticality(sim, chip44):
    _, _, runner, sched = make_rig(sim, chip44, 20.0, max_concurrent=1)
    make_due(chip44, [2], stress=10.0)
    make_due(chip44, [9], stress=90.0)
    sched.tick(now=10.0, dt=100.0)
    assert chip44.core(9).state is CoreState.TESTING
    assert chip44.core(2).state is CoreState.IDLE


def test_budget_limits_admissions(sim, chip44):
    meter, budget, runner, sched = make_rig(sim, chip44, 20.0, max_concurrent=16)
    make_due(chip44, range(16))
    sched.tick(now=10.0, dt=100.0)
    # All sessions admitted must fit under the guarded cap.
    assert 0 < runner.stats.started < 16
    assert meter.chip_power() <= budget.guarded_cap + 1e-9


def test_no_admission_without_headroom(sim, chip44):
    meter, _, runner, sched = make_rig(sim, chip44, 1.0)
    # Cap exactly at current consumption: zero headroom, nothing admitted.
    sched.budget = PowerBudget(meter.chip_power(), guard_fraction=0.0)
    make_due(chip44, range(16))
    sched.tick(now=10.0, dt=100.0)
    assert runner.stats.started == 0


def test_level_downgrade_when_preferred_does_not_fit(sim, chip44):
    # Budget that fits a near-threshold session but not a nominal one.
    meter, _, runner, sched = make_rig(
        sim, chip44, meter_probe_budget(chip44), level_policy="nominal"
    )
    make_due(chip44, [0])
    sched.tick(now=10.0, dt=100.0)
    assert runner.stats.started == 1
    session = runner.active_sessions()[0]
    assert session.level.index < len(chip44.vf_table) - 1
    assert sched.downgraded_levels == 1


def meter_probe_budget(chip):
    """A TDP that affords a min-level session but not a nominal one."""
    meter = PowerMeter(chip)
    runner = TestRunner(
        __import__("repro.sim.engine", fromlist=["Simulator"]).Simulator(),
        chip, meter, default_library(),
    )
    idle = meter.chip_power()
    low = runner.estimated_power(chip.vf_table.min_level)
    high = runner.estimated_power(chip.vf_table.max_level)
    assert low < high
    return idle + (low + high) / 2.0


def test_skip_counted_when_nothing_fits(sim, chip44):
    meter, _, runner, sched = make_rig(sim, chip44, 1.0)
    make_due(chip44, [0])
    # Harder case: some headroom exists but less than the cheapest session.
    cheap = runner.estimated_power(chip44.vf_table.min_level)
    sched.budget = PowerBudget(
        meter.chip_power() + cheap * 0.5, guard_fraction=0.0
    )
    sched.tick(now=10.0, dt=100.0)
    assert runner.stats.started == 0
    assert sched.skipped_no_budget == 1


def test_max_concurrent_cap(sim, chip44):
    _, _, runner, sched = make_rig(sim, chip44, 1000.0, max_concurrent=2)
    make_due(chip44, range(16))
    sched.tick(now=10.0, dt=100.0)
    assert runner.stats.started == 2


def test_emergency_aborts_youngest_first(sim, chip44):
    meter, budget, runner, sched = make_rig(sim, chip44, 1000.0, max_concurrent=4)
    make_due(chip44, range(4))
    sched.tick(now=10.0, dt=100.0)
    assert runner.stats.started == 4
    started_order = [s.core.core_id for s in sorted(
        runner.active_sessions(), key=lambda s: s.seq if hasattr(s, "seq") else 0
    )]
    # Shrink the budget below current consumption: emergency on next tick.
    sched.budget = PowerBudget(meter.chip_power() * 0.5, guard_fraction=0.0)
    sim.run(until=11.0)
    sched.tick(now=11.0, dt=100.0)
    assert sched.emergency_aborts > 0
    assert runner.stats.aborted == sched.emergency_aborts


def test_emergency_stops_when_under_cap(sim, chip44):
    meter, _, runner, sched = make_rig(sim, chip44, 1000.0, max_concurrent=4)
    make_due(chip44, range(4))
    sched.tick(now=10.0, dt=100.0)
    # A cap just barely below current power: one abort should suffice.
    session_cost = runner.estimated_power(runner.active_sessions()[0].level)
    sched.budget = PowerBudget(
        meter.chip_power() - 0.1 * session_cost, guard_fraction=0.0
    )
    sim.run(until=11.0)
    sched.tick(now=11.0, dt=100.0)
    assert sched.emergency_aborts == 1
    assert len(runner.active_sessions()) == 3


def test_owned_idle_cores_not_tested(sim, chip44):
    _, _, runner, sched = make_rig(sim, chip44, 1000.0)
    make_due(chip44, [3])
    chip44.core(3).owner_app = 7
    sched.tick(now=10.0, dt=100.0)
    assert runner.stats.started == 0


def test_min_interval_still_enforced(sim, chip44):
    _, _, runner, sched = make_rig(sim, chip44, 1000.0)
    sched.min_interval_us = 1000.0
    make_due(chip44, [3])
    chip44.core(3).last_test_end = 9.5
    sched.tick(now=10.0, dt=100.0)
    assert runner.stats.started == 0


def test_reserve_watts_shrinks_headroom(sim, chip44):
    meter, budget, runner, sched = make_rig(sim, chip44, 20.0, reserve_w=1000.0)
    make_due(chip44, range(16))
    sched.tick(now=10.0, dt=100.0)
    assert runner.stats.started == 0


def test_constructor_validation(sim, chip44):
    with pytest.raises(ValueError):
        make_rig(sim, chip44, 20.0, max_concurrent=0)
    with pytest.raises(ValueError):
        make_rig(sim, chip44, 20.0, reserve_w=-1.0)

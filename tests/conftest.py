"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.platform.chip import Chip
from repro.platform.technology import get_node
from repro.sim.engine import Simulator


@pytest.fixture
def node16():
    return get_node("16nm")


@pytest.fixture
def node45():
    return get_node("45nm")


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def chip44():
    """Small 4x4 chip at 16 nm with a tight-ish 20 W budget."""
    return Chip.build(4, 4, "16nm", tdp_w=20.0)


@pytest.fixture
def chip88():
    return Chip.build(8, 8, "16nm", tdp_w=80.0)

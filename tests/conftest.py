"""Shared fixtures and config factories for the test suite."""

from __future__ import annotations

import pytest

from repro.core.system import SystemConfig
from repro.platform.chip import Chip
from repro.platform.technology import get_node
from repro.sim.engine import Simulator

#: The 4x4/16nm/25W workload most integration tests share.  Keeping one
#: definition here stops the per-file copies from drifting apart; tests
#: override only what they actually vary.
SMALL_SYSTEM_BASE = dict(
    width=4,
    height=4,
    node_name="16nm",
    tdp_w=25.0,
    arrival_rate_per_ms=10.0,
    min_test_interval_us=1_000.0,
)


def small_system_config(**overrides) -> SystemConfig:
    """A :class:`SystemConfig` on the shared small 4x4 workload."""
    merged = dict(SMALL_SYSTEM_BASE)
    merged.update(overrides)
    return SystemConfig(**merged)


def small_sweep_base(**overrides) -> dict:
    """The tiny 2x2 base *dict* the serve/sweep request tests layer on."""
    merged = {"width": 2, "height": 2, "horizon_us": 1_500.0}
    merged.update(overrides)
    return merged


@pytest.fixture
def node16():
    return get_node("16nm")


@pytest.fixture
def node45():
    return get_node("45nm")


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def chip44():
    """Small 4x4 chip at 16 nm with a tight-ish 20 W budget."""
    return Chip.build(4, 4, "16nm", tdp_w=20.0)


@pytest.fixture
def chip88():
    return Chip.build(8, 8, "16nm", tdp_w=80.0)

"""Tests for the DVFS ladder."""

import pytest
from hypothesis import given, strategies as st

from repro.platform.dvfs import VFLevel, VFTable, build_vf_table
from repro.platform.technology import get_node


@pytest.fixture
def table(node16):
    return build_vf_table(node16, n_levels=8)


def test_table_has_requested_levels(table):
    assert len(table) == 8


def test_levels_indexed_in_order(table):
    for i, level in enumerate(table):
        assert level.index == i


def test_bottom_level_is_near_threshold(node16, table):
    assert table.min_level.vdd == pytest.approx(node16.vdd_min)


def test_top_level_is_nominal(node16, table):
    assert table.max_level.vdd == pytest.approx(node16.vdd_nominal)
    assert table.max_level.f_mhz == pytest.approx(node16.f_nominal_mhz)


def test_levels_strictly_increasing(table):
    for slow, fast in zip(list(table), list(table)[1:]):
        assert fast.vdd > slow.vdd
        assert fast.f_mhz > slow.f_mhz


def test_speed_equals_frequency(table):
    assert table[3].speed == table[3].f_mhz


def test_clamp_bounds(table):
    assert table.clamp(-5).index == 0
    assert table.clamp(99).index == len(table) - 1
    assert table.clamp(4).index == 4


def test_step_up_and_down(table):
    level = table[3]
    assert table.step(level, +2).index == 5
    assert table.step(level, -2).index == 1
    assert table.step(table.max_level, +1).index == len(table) - 1
    assert table.step(table.min_level, -1).index == 0


def test_fastest_not_exceeding(table):
    target = table[4].f_mhz
    assert table.fastest_not_exceeding(target).index == 4
    assert table.fastest_not_exceeding(target - 1.0).index == 3


def test_fastest_not_exceeding_falls_back_to_floor(table):
    assert table.fastest_not_exceeding(0.0).index == 0


def test_build_rejects_single_level(node16):
    with pytest.raises(ValueError):
        build_vf_table(node16, n_levels=1)


def test_table_rejects_bad_indices():
    levels = [VFLevel(0, 0.5, 100.0), VFLevel(5, 0.6, 200.0)]
    with pytest.raises(ValueError):
        VFTable(levels)


def test_table_rejects_non_monotonic_levels():
    levels = [VFLevel(0, 0.6, 200.0), VFLevel(1, 0.5, 100.0)]
    with pytest.raises(ValueError):
        VFTable(levels)


def test_table_rejects_empty():
    with pytest.raises(ValueError):
        VFTable([])


@given(st.integers(min_value=2, max_value=16))
def test_any_size_table_spans_min_to_nominal(n_levels):
    node = get_node("22nm")
    table = build_vf_table(node, n_levels=n_levels)
    assert len(table) == n_levels
    assert table.min_level.vdd == pytest.approx(node.vdd_min)
    assert table.max_level.vdd == pytest.approx(node.vdd_nominal)


@given(st.integers(min_value=-3, max_value=12), st.integers(min_value=-12, max_value=12))
def test_step_always_lands_in_range(start, delta):
    table = build_vf_table(get_node("16nm"), n_levels=8)
    level = table.clamp(start)
    stepped = table.step(level, delta)
    assert 0 <= stepped.index < len(table)

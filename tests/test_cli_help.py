"""Pin the CLI ``--help`` output and its style conventions.

Every subcommand's help text is snapshotted into
``tests/snapshots/cli_help.txt`` at a fixed 80-column width, so any
accidental drift in flags, metavars or descriptions shows up as a
diff.  Regenerate deliberately with::

    REPRO_UPDATE_SNAPSHOTS=1 PYTHONPATH=src python -m pytest \
        tests/test_cli_help.py

On top of the literal snapshot, style invariants keep the subcommands
consistent: every value-taking option needs an explicit UPPERCASE
metavar (or a ``choices`` list), and every option needs a help string
that starts in lowercase.
"""

import argparse
import os

import pytest

from repro.cli import build_parser

SNAPSHOT = os.path.join(
    os.path.dirname(__file__), "snapshots", "cli_help.txt"
)


def iter_parsers():
    """Yield (label, parser) for the root parser and every subparser."""
    os.environ["COLUMNS"] = "80"  # pin argparse help wrapping
    root = build_parser()
    queue = [("repro", root)]
    while queue:
        label, parser = queue.pop(0)
        yield label, parser
        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                for name, child in action.choices.items():
                    queue.append((f"{label} {name}", child))


def render_all_help() -> str:
    chunks = []
    for label, parser in iter_parsers():
        chunks.append(f"$ {label} --help\n{parser.format_help()}")
    return "\n".join(chunks)


def test_help_snapshot():
    rendered = render_all_help()
    if os.environ.get("REPRO_UPDATE_SNAPSHOTS"):
        os.makedirs(os.path.dirname(SNAPSHOT), exist_ok=True)
        with open(SNAPSHOT, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    with open(SNAPSHOT, "r", encoding="utf-8") as handle:
        expected = handle.read()
    assert rendered == expected, (
        "CLI --help drifted from tests/snapshots/cli_help.txt; if the "
        "change is deliberate, regenerate with REPRO_UPDATE_SNAPSHOTS=1"
    )


def value_taking_options(parser):
    for action in parser._actions:
        if action.option_strings and action.nargs != 0 and not isinstance(
            action, (argparse._HelpAction, argparse._SubParsersAction)
        ):
            yield action


def test_every_value_option_has_uppercase_metavar():
    for label, parser in iter_parsers():
        for action in value_taking_options(parser):
            if action.choices is not None:
                continue  # argparse renders the choices list itself
            assert action.metavar, (
                f"{label}: {action.option_strings[0]} needs a metavar"
            )
            assert action.metavar == action.metavar.upper(), (
                f"{label}: {action.option_strings[0]} metavar "
                f"{action.metavar!r} must be uppercase"
            )


def test_every_option_help_is_lowercase_prose():
    for label, parser in iter_parsers():
        for action in parser._actions:
            if not action.option_strings:
                continue
            if isinstance(action, argparse._HelpAction):
                continue
            assert action.help, (
                f"{label}: {action.option_strings[0]} needs a help string"
            )
            first = action.help.lstrip()[0]
            assert not first.isupper() or action.help.split()[0].isupper(), (
                f"{label}: {action.option_strings[0]} help should start "
                f"lowercase (or with an acronym): {action.help!r}"
            )


@pytest.mark.parametrize("flag", ["--jobs", "--batch-size", "--cache-dir"])
def test_shared_flags_use_one_metavar_everywhere(flag):
    """The same flag never shows different metavars across subcommands."""
    metavars = set()
    for _, parser in iter_parsers():
        for action in value_taking_options(parser):
            if flag in action.option_strings and action.metavar:
                metavars.add(action.metavar)
    assert len(metavars) <= 1, f"{flag} uses mixed metavars: {metavars}"

"""Tests for the aging model and fault injection."""

import random

import pytest

from repro.aging.faults import FaultInjector, FaultParameters
from repro.aging.model import AgingModel, AgingParameters
from repro.platform.chip import Chip
from repro.platform.dvfs import build_vf_table
from repro.platform.technology import get_node


@pytest.fixture
def aging(node16):
    return AgingModel(node16)


@pytest.fixture
def table(node16):
    return build_vf_table(node16)


# ----------------------------------------------------------------------
# AgingModel
# ----------------------------------------------------------------------
def test_stress_rate_higher_at_higher_voltage(aging, table):
    assert aging.stress_rate(table.max_level) > aging.stress_rate(table.min_level)


def test_stress_rate_scales_with_activity(aging, table):
    full = aging.stress_rate(table.max_level, 1.0)
    assert aging.stress_rate(table.max_level, 0.5) == pytest.approx(0.5 * full)


def test_stress_rate_at_nominal_equals_base_rate(aging, table):
    assert aging.stress_rate(table.max_level, 1.0) == pytest.approx(
        aging.params.base_rate
    )


def test_accrue_busy_updates_both_sinks(aging, table, chip44):
    core = chip44.core(0)
    delta = aging.accrue_busy(core, 1000.0, table.max_level, 1.0)
    assert delta > 0
    assert core.age_stress == pytest.approx(delta)
    assert core.stress_since_test == pytest.approx(delta)


def test_accrue_test_does_not_touch_stress_since_test(aging, table, chip44):
    core = chip44.core(0)
    delta = aging.accrue_test(core, 1000.0, table.max_level)
    assert delta > 0
    assert core.age_stress == pytest.approx(delta)
    assert core.stress_since_test == 0.0


def test_accrue_test_reduced_by_fraction(aging, table, chip44):
    busy = aging.accrue_busy(chip44.core(0), 100.0, table.max_level, 1.0)
    test = aging.accrue_test(chip44.core(1), 100.0, table.max_level)
    assert test == pytest.approx(busy * aging.params.test_stress_fraction)


def test_accrue_rejects_negative_duration(aging, table, chip44):
    with pytest.raises(ValueError):
        aging.accrue_busy(chip44.core(0), -1.0, table.max_level, 1.0)
    with pytest.raises(ValueError):
        aging.accrue_test(chip44.core(0), -1.0, table.max_level)


def test_aging_parameters_validation():
    with pytest.raises(ValueError):
        AgingParameters(base_rate=0.0)
    with pytest.raises(ValueError):
        AgingParameters(test_stress_fraction=1.5)


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
def make_injector(chip, hazard, seed=1, **kwargs):
    return FaultInjector(
        chip,
        FaultParameters(base_hazard_per_us=hazard, **kwargs),
        random.Random(seed),
    )


def test_zero_hazard_never_injects(chip44):
    injector = make_injector(chip44, 0.0)
    for _ in range(100):
        assert injector.tick(0.0, 100.0) == []
    assert injector.records == []


def test_huge_hazard_injects_everywhere(chip44):
    injector = make_injector(chip44, 1.0)
    injected = injector.tick(5.0, 100.0)
    assert len(injected) == 16
    assert all(chip44.core(r.core_id).fault_present for r in injected)
    assert all(r.injected_at == 5.0 for r in injected)


def test_no_double_injection(chip44):
    injector = make_injector(chip44, 1.0)
    injector.tick(0.0, 100.0)
    assert injector.tick(1.0, 100.0) == []


def test_hazard_grows_with_age_stress(chip44):
    injector = make_injector(chip44, 1e-6, stress_scale=10.0)
    fresh = injector.hazard(chip44.core(0))
    chip44.core(1).age_stress = 20.0
    assert injector.hazard(chip44.core(1)) == pytest.approx(3.0 * fresh)


def test_detection_requires_manifest_corner_high(chip44):
    injector = make_injector(chip44, 1.0)
    injector.tick(0.0, 100.0)
    core = chip44.core(0)
    record = injector.open_record(core)
    record.kind = "high"
    # A high-corner fault never shows strictly below its manifest level.
    assert (
        injector.try_detect(core, 10.0, record.manifest_level - 1, coverage=1.0)
        is None
    )
    detected = injector.try_detect(core, 10.0, record.manifest_level, coverage=1.0)
    assert detected is record
    assert record.detected_at == 10.0
    assert record.detection_latency() == pytest.approx(10.0)


def test_detection_requires_manifest_corner_low(chip44):
    injector = make_injector(chip44, 1.0)
    injector.tick(0.0, 100.0)
    core = chip44.core(0)
    record = injector.open_record(core)
    record.kind = "low"
    # A low-corner fault never shows strictly above its manifest level.
    assert (
        injector.try_detect(core, 10.0, record.manifest_level + 1, coverage=1.0)
        is None
    )
    assert (
        injector.try_detect(core, 10.0, record.manifest_level, coverage=1.0)
        is record
    )


def test_manifests_at_directions():
    from repro.aging.faults import FaultRecord

    high = FaultRecord(core_id=0, injected_at=0.0, manifest_level=4, kind="high")
    assert high.manifests_at(4) and high.manifests_at(7)
    assert not high.manifests_at(3)
    low = FaultRecord(core_id=0, injected_at=0.0, manifest_level=4, kind="low")
    assert low.manifests_at(4) and low.manifests_at(0)
    assert not low.manifests_at(5)


def test_fault_kind_validation():
    from repro.aging.faults import FaultRecord

    with pytest.raises(ValueError):
        FaultRecord(core_id=0, injected_at=0.0, manifest_level=1, kind="weird")


def test_low_corner_fraction_extremes(chip44):
    all_low = make_injector(chip44, 1.0, low_corner_fraction=1.0)
    all_low.tick(0.0, 100.0)
    assert all(r.kind == "low" for r in all_low.records)
    from repro.platform.chip import Chip

    chip2 = Chip.build(4, 4)
    all_high = FaultInjector(
        chip2,
        FaultParameters(base_hazard_per_us=1.0, low_corner_fraction=0.0),
        random.Random(2),
    )
    all_high.tick(0.0, 100.0)
    assert all(r.kind == "high" for r in all_high.records)


def test_detection_respects_coverage_draw(chip44):
    injector = make_injector(chip44, 1.0, seed=3)
    injector.tick(0.0, 100.0)
    core = chip44.core(0)
    record = injector.open_record(core)
    record.kind = "high"
    # Coverage 0 can never detect.
    assert injector.try_detect(core, 1.0, record.manifest_level, coverage=0.0) is None
    assert not record.detected


def test_detection_on_healthy_core_is_none(chip44):
    injector = make_injector(chip44, 0.0)
    assert injector.try_detect(chip44.core(0), 1.0, 7, coverage=1.0) is None


def test_detected_and_undetected_partitions(chip44):
    injector = make_injector(chip44, 1.0)
    injector.tick(0.0, 100.0)
    core = chip44.core(0)
    record = injector.open_record(core)
    injector.try_detect(core, 5.0, record.manifest_level, coverage=1.0)
    assert record in injector.detected_records()
    assert len(injector.detected_records()) + len(injector.undetected_records()) == 16


def test_mean_detection_latency(chip44):
    injector = make_injector(chip44, 1.0)
    injector.tick(0.0, 100.0)
    assert injector.mean_detection_latency() is None
    for core_id in (0, 1):
        core = chip44.core(core_id)
        record = injector.open_record(core)
        injector.try_detect(core, 10.0, record.manifest_level, coverage=1.0)
    assert injector.mean_detection_latency() == pytest.approx(10.0)


def test_manifest_levels_within_table(chip44):
    injector = make_injector(chip44, 1.0)
    injector.tick(0.0, 100.0)
    n = len(chip44.vf_table)
    assert all(0 <= r.manifest_level < n for r in injector.records)


def test_manifest_fraction_restricts_range(chip44):
    injector = make_injector(chip44, 1.0, max_manifest_fraction=0.25)
    injector.tick(0.0, 100.0)
    assert all(r.manifest_level < 2 for r in injector.records)


def test_fault_parameters_validation():
    with pytest.raises(ValueError):
        FaultParameters(base_hazard_per_us=-1.0)
    with pytest.raises(ValueError):
        FaultParameters(stress_scale=0.0)
    with pytest.raises(ValueError):
        FaultParameters(max_manifest_fraction=0.0)


# ----------------------------------------------------------------------
# Property tests (hypothesis)
# ----------------------------------------------------------------------
from hypothesis import given, settings
from hypothesis import strategies as st

_stress = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)
_hazard = st.floats(
    min_value=0.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
_time = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)


@settings(max_examples=50, deadline=None)
@given(a=_stress, b=_stress, base=_hazard)
def test_hazard_monotone_in_age_stress(a, b, base):
    # More accumulated aging stress never lowers the fault hazard.
    lo, hi = sorted((a, b))
    chip = Chip.build(2, 2)
    injector = FaultInjector(
        chip,
        FaultParameters(base_hazard_per_us=base),
        random.Random(0),
    )
    core_lo, core_hi = chip.core(0), chip.core(1)
    core_lo.age_stress = lo
    core_hi.age_stress = hi
    assert injector.hazard(core_hi) >= injector.hazard(core_lo)
    # Fresh core pins the intercept: hazard == base hazard exactly.
    assert injector.hazard(chip.core(2)) == pytest.approx(base)


@settings(max_examples=50, deadline=None)
@given(injected_at=_time, delay=_time, level=st.integers(0, 7))
def test_detection_latency_none_until_detected(injected_at, delay, level):
    from repro.aging.faults import FaultRecord

    record = FaultRecord(
        core_id=0, injected_at=injected_at, manifest_level=level
    )
    # Latent fault: no latency, whatever the clock says.
    assert record.detection_latency() is None
    assert not record.detected
    record.detected_at = injected_at + delay
    assert record.detected
    latency = record.detection_latency()
    assert latency is not None
    assert latency >= 0.0
    assert latency == pytest.approx(delay, abs=1e-6)

"""Tests for workload scenarios and the CLI."""

import random

import pytest

from repro.cli import main
from repro.workload.scenarios import (
    SCENARIOS,
    WorkloadScenario,
    get_scenario,
    scenario_config_kwargs,
)


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
def test_all_scenarios_generate_arrivals():
    for name, scenario in SCENARIOS.items():
        arrivals = scenario.generate(20_000.0, random.Random(1))
        assert arrivals, name
        times = [a.time for a in arrivals]
        assert times == sorted(times)


def test_get_scenario_unknown():
    with pytest.raises(KeyError, match="moderate"):
        get_scenario("extreme")


def test_scenario_rates_ordered():
    assert SCENARIOS["light"].rate_per_ms < SCENARIOS["saturating"].rate_per_ms


def test_bursty_scenario_builds_bursty_process():
    from repro.workload.arrivals import BurstyArrivalProcess

    process = SCENARIOS["bursty"].build_process(random.Random(1))
    assert isinstance(process, BurstyArrivalProcess)


def test_hotspot_scenario_small_apps_only():
    arrivals = SCENARIOS["hotspot"].generate(10_000.0, random.Random(2))
    assert all(len(a.graph) <= 6 for a in arrivals)


def test_scenario_config_kwargs_apply():
    import dataclasses

    from repro.core.system import SystemConfig

    cfg = dataclasses.replace(
        SystemConfig(), **scenario_config_kwargs("bursty")
    )
    assert cfg.bursty
    assert cfg.arrival_rate_per_ms == SCENARIOS["bursty"].rate_per_ms


def test_scenario_validation():
    with pytest.raises(ValueError):
        WorkloadScenario(
            name="bad", rate_per_ms=0.0,
            profile_names=("small",), profile_weights=(1.0,),
        )
    with pytest.raises(ValueError):
        WorkloadScenario(
            name="bad", rate_per_ms=1.0,
            profile_names=("giant",), profile_weights=(1.0,),
        )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "E2" in out
    assert "moderate" in out
    assert "16nm" in out


def test_cli_run_prints_summary(capsys):
    code = main(["run", "--horizon-ms", "3", "--seed", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "throughput_ops_per_us" in out
    assert "apps_completed" in out


def test_cli_run_with_scenario_and_policies(capsys):
    code = main(
        [
            "run", "--horizon-ms", "3", "--scenario", "light",
            "--mapper", "test-aware", "--test-policy", "none",
            "--power-policy", "naive", "--node", "45nm",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "45nm" in out
    assert "mapper=test-aware" in out


def test_cli_run_thermal_prints_peak(capsys):
    code = main(["run", "--horizon-ms", "3", "--thermal"])
    assert code == 0
    assert "peak temperature" in capsys.readouterr().out


def test_cli_run_saves_config_and_trace(tmp_path, capsys):
    cfg_path = tmp_path / "cfg.json"
    trace_path = tmp_path / "trace.csv"
    code = main(
        [
            "run", "--horizon-ms", "3",
            "--save-config", str(cfg_path),
            "--export-trace", str(trace_path),
        ]
    )
    assert code == 0
    assert cfg_path.exists()
    content = trace_path.read_text()
    assert content.startswith("time_us,")
    assert "power.total" in content


def test_cli_run_from_config_file(tmp_path, capsys):
    from repro.core.config_io import save_config
    from repro.core.system import SystemConfig

    path = tmp_path / "cfg.json"
    save_config(SystemConfig(horizon_us=3000.0, node_name="32nm"), str(path))
    code = main(["run", "--config", str(path)])
    assert code == 0
    assert "32nm" in capsys.readouterr().out


def test_cli_experiment_unknown_id(capsys):
    code = main(["experiment", "E42"])
    assert code == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_cli_experiment_runs_short(capsys):
    code = main(["experiment", "E2", "--horizon-us", "8000"])
    assert code == 0
    out = capsys.readouterr().out
    assert "E2" in out
    assert "penalty_pct" in out


def test_cli_sweep(capsys):
    code = main(["sweep", "tdp_w", "40,80", "--horizon-ms", "3"])
    assert code == 0
    out = capsys.readouterr().out
    assert "sweep of tdp_w" in out
    assert "40" in out and "80" in out


def test_cli_sweep_unknown_field(capsys):
    assert main(["sweep", "bogus_field", "1,2"]) == 2


def test_cli_sweep_empty_values(capsys):
    assert main(["sweep", "tdp_w", " , "]) == 2


def test_cli_sweep_string_values(capsys):
    code = main(["sweep", "mapper", "contiguous,test-aware", "--horizon-ms", "3"])
    assert code == 0
    assert "test-aware" in capsys.readouterr().out


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])

"""Tests for the observability subsystem (repro.obs).

Covers the journal/profiler sinks and their no-op invariants, the audit
reports reconstructed from journals, run provenance manifests, and — the
load-bearing guarantee — that enabling full observability reproduces a
disabled run's results bit for bit.
"""

import json

import pytest

from repro.core.system import SystemConfig, run_system
from repro.obs import (
    DEBUG_TYPES,
    NULL_JOURNAL,
    NULL_PROFILER,
    Journal,
    JournalEvent,
    PhaseProfiler,
    RunManifest,
    active_journal,
    active_profiler,
    audit,
    configure,
    digest_of,
    events_of,
    profiled,
    rows_digest,
)


@pytest.fixture(autouse=True)
def _reset_global_sinks():
    yield
    configure()


# ----------------------------------------------------------------------
# Journal
# ----------------------------------------------------------------------
def test_journal_records_events_in_order():
    journal = Journal()
    journal.emit("test.launch", 10.0, core=3, level=2)
    journal.emit("test.defer", 20.0, core=4, reason="no-headroom")
    assert len(journal) == 2
    events = journal.events
    assert [e.type for e in events] == ["test.launch", "test.defer"]
    assert events[0].time == 10.0
    assert events[0].data == {"core": 3, "level": 2}
    assert journal.counts() == {"test.launch": 1, "test.defer": 1}


def test_journal_events_cached_and_refreshed():
    journal = Journal()
    journal.emit("a", 1.0)
    first = journal.events
    assert journal.events is first  # cached between emits
    journal.emit("b", 2.0)
    assert [e.type for e in journal.events] == ["a", "b"]


def test_null_journal_records_nothing():
    NULL_JOURNAL.emit("test.launch", 1.0, core=0)
    assert not NULL_JOURNAL.enabled
    assert len(NULL_JOURNAL) == 0


def test_debug_types_filtered_at_info_level():
    info = Journal(level="info")
    debug = Journal(level="debug")
    for journal in (info, debug):
        journal.emit("core.transition", 1.0, core=0, from_state="IDLE", to_state="BUSY")
        journal.emit("test.launch", 2.0, core=0)
    assert info.counts() == {"test.launch": 1}
    assert debug.counts() == {"core.transition": 1, "test.launch": 1}
    assert "core.transition" in DEBUG_TYPES and "map.blocked" in DEBUG_TYPES
    assert not info.debug and debug.debug


def test_journal_rejects_unknown_level_and_bad_knobs():
    with pytest.raises(ValueError):
        Journal(level="verbose")
    with pytest.raises(ValueError):
        Journal(sample_every=0)
    with pytest.raises(ValueError):
        Journal(capacity=-1)


def test_sampling_decimates_high_rate_types():
    journal = Journal(level="debug", sample_every=3)
    for i in range(9):
        journal.emit("core.transition", float(i), core=0)
        journal.emit("test.launch", float(i), core=0)
    counts = journal.counts()
    assert counts["core.transition"] == 3  # every 3rd kept
    assert counts["test.launch"] == 9      # decisions never sampled


def test_capacity_bounds_journal_and_counts_drops():
    journal = Journal(capacity=2)
    for i in range(5):
        journal.emit("test.launch", float(i), core=i)
    assert len(journal) == 2
    assert journal.dropped == 3


def test_jsonl_round_trip(tmp_path):
    journal = Journal()
    journal.emit("test.launch", 10.5, core=3, level=2, headroom_w=1.25)
    journal.emit("app.map", 11.0, app=7, cores=(1, 2), waited_us=0.5)
    path = tmp_path / "run.jsonl"
    journal.write_jsonl(str(path))
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0]) == {
        "t": 10.5, "type": "test.launch", "core": 3, "level": 2,
        "headroom_w": 1.25,
    }
    loaded = Journal.load_jsonl(str(path))
    assert [e.type for e in loaded] == ["test.launch", "app.map"]
    assert loaded[0].time == 10.5
    assert loaded[0].data["headroom_w"] == 1.25
    # Tuples serialise as JSON arrays and come back as lists.
    assert loaded[1].data["cores"] == [1, 2]


def test_events_of_accepts_journal_or_iterable():
    journal = Journal()
    journal.emit("a", 1.0)
    assert [e.type for e in events_of(journal)] == ["a"]
    plain = [JournalEvent(time=1.0, type="b", data={})]
    assert list(events_of(plain)) == plain


def test_filter_by_prefix_window_and_predicate():
    journal = Journal()
    journal.emit("test.launch", 1.0, core=0)
    journal.emit("test.defer", 2.0, core=1, reason="no-headroom")
    journal.emit("dvfs.change", 3.0, core=0, from_level=0, to_level=1)
    assert [e.time for e in journal.filter(type_prefix="test.")] == [1.0, 2.0]
    assert [e.type for e in journal.filter(t0=2.0, t1=3.0)] == [
        "test.defer", "dvfs.change",
    ]
    hits = journal.filter(where=lambda e: e.data.get("core") == 0)
    assert [e.type for e in hits] == ["test.launch", "dvfs.change"]


# ----------------------------------------------------------------------
# Profiler
# ----------------------------------------------------------------------
def test_profiler_accumulates_phases():
    profiler = PhaseProfiler()
    with profiler.phase("mapping"):
        pass
    with profiler.phase("mapping"):
        pass
    profiler.add("pid.step", 0.5, calls=10)
    summary = profiler.summary()
    assert summary["mapping"]["calls"] == 2
    assert summary["mapping"]["wall_s"] >= 0.0
    assert summary["pid.step"] == {"calls": 10.0, "wall_s": 0.5}
    # Sorted by wall time, descending.
    assert list(summary) == ["pid.step", "mapping"]
    assert "pid.step" in profiler.report()


def test_profiler_accumulator_is_shared_and_cheap():
    profiler = PhaseProfiler()
    acc = profiler.accumulator("noc.transfer")
    assert profiler.accumulator("noc.transfer") is acc
    acc.calls += 1
    acc.wall_s += 0.25
    assert profiler.summary()["noc.transfer"] == {"calls": 1.0, "wall_s": 0.25}


def test_disabled_profiler_is_noop():
    assert not NULL_PROFILER.enabled
    ctx = NULL_PROFILER.phase("anything")
    with ctx:
        pass
    # The disabled phase context is a shared singleton.
    assert NULL_PROFILER.phase("other") is ctx


def test_profiler_reset():
    profiler = PhaseProfiler()
    profiler.add("x", 1.0)
    profiler.reset()
    assert profiler.summary() == {}
    assert profiler.report() == "no phases recorded"


def test_profiled_decorator_uses_active_profiler():
    @profiled("decorated.fn")
    def work(x):
        return x * 2

    assert work(3) == 6  # no profiler configured: plain call
    profiler = PhaseProfiler()
    configure(profiler=profiler)
    assert work(4) == 8
    assert profiler.summary()["decorated.fn"]["calls"] == 1


def test_configure_and_reset_globals():
    journal, profiler = Journal(), PhaseProfiler()
    configure(journal, profiler)
    assert active_journal() is journal
    assert active_profiler() is profiler
    configure()
    assert active_journal() is NULL_JOURNAL
    assert active_profiler() is NULL_PROFILER


# ----------------------------------------------------------------------
# Audit reports on synthetic journals
# ----------------------------------------------------------------------
def _synthetic_journal():
    journal = Journal()
    journal.emit("test.launch", 10.0, core=0, level=0, headroom_w=5.0,
                 cost_w=1.0, criticality=2.0, downgraded=False)
    journal.emit("test.complete", 40.0, core=0, level=0, detected=False,
                 gap_us=40.0)
    journal.emit("test.defer", 50.0, core=1, reason="no-headroom",
                 headroom_w=-1.0, criticality=3.0)
    journal.emit("test.launch", 60.0, core=1, level=1, headroom_w=4.0,
                 cost_w=1.0, criticality=3.0, downgraded=True)
    journal.emit("test.complete", 90.0, core=1, level=1, detected=False,
                 gap_us=90.0)
    journal.emit("dvfs.change", 95.0, core=1, from_level=1, to_level=0)
    journal.emit("budget.violation", 97.0, measured_w=90.0, cap_w=80.0,
                 overshoot_w=10.0)
    journal.emit("test.complete", 140.0, core=0, level=1, detected=False,
                 gap_us=100.0)
    return journal


def test_audit_test_decisions():
    decisions = audit.test_decisions(_synthetic_journal())
    assert [d["action"] for d in decisions] == ["launch", "defer", "launch"]
    assert decisions[0]["reason"] == "fits"
    assert decisions[1]["reason"] == "no-headroom"
    assert decisions[1]["headroom_w"] == -1.0
    assert decisions[2]["reason"] == "downgraded"
    assert audit.deferral_reasons(_synthetic_journal()) == {"no-headroom": 1}


def test_audit_core_intervals_and_gaps():
    intervals = audit.core_test_intervals(_synthetic_journal())
    assert intervals == {0: [40.0, 140.0], 1: [90.0]}
    gaps = audit.core_test_gaps(_synthetic_journal())
    assert gaps[0] == [40.0, 100.0]
    assert gaps[1] == [90.0]


def test_audit_vf_coverage():
    journal = _synthetic_journal()
    assert audit.vf_coverage(journal) == {0: [0, 1], 1: [1]}
    assert not audit.all_levels_covered(journal, n_levels=2)
    assert not audit.all_levels_covered(Journal(), n_levels=2)
    full = Journal()
    full.emit("test.complete", 1.0, core=0, level=0)
    full.emit("test.complete", 2.0, core=0, level=1)
    assert audit.all_levels_covered(full, n_levels=2)


def test_audit_summarize_and_format():
    roll = audit.summarize(_synthetic_journal())
    assert roll["events"] == 8
    assert roll["t_first"] == 10.0 and roll["t_last"] == 140.0
    assert roll["test_launches"] == 2
    assert roll["test_deferrals"] == 1
    assert roll["tests_completed"] == 3
    assert roll["cores_tested"] == 2
    assert roll["levels_covered"] == [0, 1]
    assert roll["budget_violations"] == 1
    assert roll["dvfs_changes"] == 1
    text = audit.format_summary(_synthetic_journal(), n_levels=2)
    assert "test.launch" in text
    assert "no-headroom" in text
    assert "False" in text  # coverage verdict line


# ----------------------------------------------------------------------
# Integration: instrumented runs
# ----------------------------------------------------------------------
_CONFIG = SystemConfig(horizon_us=6_000.0, seed=7)


def test_enabling_observability_is_bit_exact():
    """The read-only invariant: obs on/off must not change any result."""
    plain = run_system(_CONFIG)
    journal = Journal(level="debug")
    profiler = PhaseProfiler()
    observed = run_system(_CONFIG, journal=journal, profiler=profiler)
    assert observed.summary() == plain.summary()
    assert digest_of(sorted(observed.summary().items())) == digest_of(
        sorted(plain.summary().items())
    )
    assert observed.per_core_tests == plain.per_core_tests
    assert len(journal) > 0
    assert profiler.summary()["sim.dispatch"]["calls"] > 0


def test_journal_answers_the_papers_questions():
    """Launches/deferrals with reasons + headroom, per-core intervals and
    V/F coverage must be reconstructible from the journal alone."""
    journal = Journal()
    result = run_system(_CONFIG, journal=journal)

    decisions = audit.test_decisions(journal)
    launches = [d for d in decisions if d["action"] == "launch"]
    assert launches, "expected test launches in a 6 ms run"
    for decision in decisions:
        assert decision["reason"] is not None
        assert isinstance(decision["headroom_w"], float)

    # Per-core test completions seen by the audit match the result's
    # own per-core counters exactly.
    intervals = audit.core_test_intervals(journal)
    journal_counts = {core: len(times) for core, times in intervals.items()}
    result_counts = {
        core: n for core, n in result.per_core_tests.items() if n > 0
    }
    assert journal_counts == result_counts

    # Every tested core reports the V/F level indexes it covered.
    coverage = audit.vf_coverage(journal)
    assert set(coverage) == set(result_counts)
    for levels in coverage.values():
        assert all(0 <= lv < _CONFIG.n_vf_levels for lv in levels)

    # DVFS changes carry from/to levels.
    for event in journal.filter(type_prefix="dvfs."):
        assert {"core", "from_level", "to_level"} <= set(event.data)

    # PID steps expose the controller state behind DVFS decisions.
    pid_steps = journal.filter(type_prefix="pid.")
    assert pid_steps
    assert {"measured_w", "error_w", "integral", "signal_w"} <= set(
        pid_steps[0].data
    )


def test_e2_digest_unchanged_with_journal_enabled():
    """Tier-1 guard for the bench invariant: the E2 table is bit-identical
    with full journaling enabled (scaled-down horizon, serial path)."""
    from repro.experiments import run_experiment

    plain = run_experiment("E2", horizon_us=3_000.0, jobs=1)
    configure(Journal(level="debug"), PhaseProfiler())
    try:
        observed = run_experiment("E2", horizon_us=3_000.0, jobs=1)
    finally:
        configure()
    assert plain.rows == observed.rows
    assert (
        plain.provenance["rows_digest"] == observed.provenance["rows_digest"]
    )
    assert len(active_journal()) == 0  # reset restored the null sink


def test_run_manifest_provenance():
    journal = Journal()
    profiler = PhaseProfiler()
    result = run_system(_CONFIG, journal=journal, profiler=profiler)
    manifest = result.manifest
    assert isinstance(manifest, RunManifest)
    assert manifest.seed == _CONFIG.seed
    assert manifest.horizon_us == _CONFIG.horizon_us
    assert manifest.config["tdp_w"] == _CONFIG.tdp_w
    assert manifest.journal_events == len(journal)
    assert manifest.journal_dropped == 0
    assert "sim.dispatch" in manifest.profile
    # The digest is a pure function of the summary: identical reruns agree.
    rerun = run_system(_CONFIG)
    assert rerun.manifest.summary_digest == manifest.summary_digest
    as_dict = manifest.to_dict()
    assert as_dict["seed"] == _CONFIG.seed
    assert as_dict["version"]


def test_experiment_provenance_rows_digest():
    from repro.experiments import run_experiment

    result = run_experiment("E2", horizon_us=3_000.0, jobs=1)
    prov = result.provenance
    assert prov["experiment_id"] == "E2"
    assert prov["kwargs"] == {"horizon_us": 3000.0, "jobs": 1}
    assert prov["rows_digest"] == rows_digest(result.rows)
    assert prov["version"]


def test_scheduler_explain_is_pure():
    """explain() must audit without mutating scheduler or runner state."""
    from repro.core.system import ManycoreSystem

    system = ManycoreSystem(SystemConfig(horizon_us=4_000.0, seed=3))
    system.run()
    scheduler = system.test_scheduler
    now = system.sim.now
    before = (
        scheduler.downgraded_levels,
        system.runner.stats.started,
        system.runner.stats.aborted,
    )
    first = scheduler.explain(now)
    second = scheduler.explain(now)
    assert first == second
    after = (
        scheduler.downgraded_levels,
        system.runner.stats.started,
        system.runner.stats.aborted,
    )
    assert before == after
    assert {"time", "measured_w", "headroom_w", "slots", "decisions"} <= set(
        first
    )
    for decision in first["decisions"]:
        assert decision["action"] in ("launch", "defer")
        assert "core" in decision and "criticality" in decision


def test_power_manager_explain():
    from repro.core.system import ManycoreSystem

    system = ManycoreSystem(SystemConfig(horizon_us=4_000.0, seed=3))
    system.run()
    report = system.power_manager.explain(system.sim.now)
    assert report["policy"] == "pid"
    assert {"measured_w", "cap_w", "headroom_w", "core_levels",
            "set_point_w", "integral", "last_error_w"} <= set(report)


def test_debug_level_records_core_transitions():
    journal = Journal(level="debug")
    run_system(SystemConfig(horizon_us=2_000.0, seed=5), journal=journal)
    counts = journal.counts()
    assert counts.get("core.transition", 0) > 0
    assert counts.get("map.blocked", 0) >= 0  # debug-only churn event
    info = Journal(level="info")
    run_system(SystemConfig(horizon_us=2_000.0, seed=5), journal=info)
    assert "core.transition" not in info.counts()
    assert "map.blocked" not in info.counts()

"""Tests for the NoC substrate: topology, XY routing, analytic model."""

import pytest
from hypothesis import given, strategies as st

from repro.noc.model import NocModel, NocParameters
from repro.noc.routing import xy_links, xy_path
from repro.noc.topology import Mesh


@pytest.fixture
def mesh():
    return Mesh(4, 4)


@pytest.fixture
def noc(mesh):
    return NocModel(mesh)


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------
def test_mesh_size(mesh):
    assert len(mesh) == 16


def test_node_id_roundtrip(mesh):
    for pos in mesh.positions():
        assert mesh.position(mesh.node_id(pos)) == pos


def test_node_id_out_of_mesh(mesh):
    with pytest.raises(IndexError):
        mesh.node_id((4, 0))
    with pytest.raises(IndexError):
        mesh.position(16)


def test_neighbors_counts(mesh):
    assert len(mesh.neighbors((0, 0))) == 2
    assert len(mesh.neighbors((1, 0))) == 3
    assert len(mesh.neighbors((1, 1))) == 4


def test_manhattan_and_hops(mesh):
    assert Mesh.manhattan((0, 0), (3, 2)) == 5
    assert mesh.hop_count((0, 0), (3, 2)) == 5
    assert mesh.hop_count((2, 2), (2, 2)) == 0


def test_invalid_mesh_rejected():
    with pytest.raises(ValueError):
        Mesh(0, 3)


# ----------------------------------------------------------------------
# XY routing
# ----------------------------------------------------------------------
def test_xy_path_endpoints(mesh):
    path = xy_path(mesh, (0, 0), (3, 2))
    assert path[0] == (0, 0)
    assert path[-1] == (3, 2)


def test_xy_path_corrects_x_first(mesh):
    path = xy_path(mesh, (0, 0), (2, 2))
    assert path == [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]


def test_xy_path_handles_negative_directions(mesh):
    path = xy_path(mesh, (3, 3), (1, 1))
    assert path == [(3, 3), (2, 3), (1, 3), (1, 2), (1, 1)]


def test_xy_path_self_is_single_node(mesh):
    assert xy_path(mesh, (1, 1), (1, 1)) == [(1, 1)]


def test_xy_links_count_equals_hops(mesh):
    links = xy_links(mesh, (0, 0), (3, 2))
    assert len(links) == 5


def test_xy_path_outside_mesh_rejected(mesh):
    with pytest.raises(IndexError):
        xy_path(mesh, (0, 0), (9, 9))


@given(
    st.tuples(st.integers(0, 5), st.integers(0, 5)),
    st.tuples(st.integers(0, 5), st.integers(0, 5)),
)
def test_xy_path_length_is_manhattan_plus_one(src, dst):
    mesh = Mesh(6, 6)
    path = xy_path(mesh, src, dst)
    assert len(path) == Mesh.manhattan(src, dst) + 1
    # Consecutive nodes are mesh-adjacent.
    for a, b in zip(path, path[1:]):
        assert Mesh.manhattan(a, b) == 1


# ----------------------------------------------------------------------
# Analytic model
# ----------------------------------------------------------------------
def test_estimate_zero_volume_free(noc):
    est = noc.estimate((0, 0), (3, 3), 0.0)
    assert est.latency_us == 0.0
    assert est.energy_uj == 0.0


def test_estimate_same_node_free(noc):
    est = noc.estimate((1, 1), (1, 1), 500.0)
    assert est.latency_us == 0.0
    assert est.hops == 0


def test_estimate_latency_components(noc):
    p = noc.params
    est = noc.estimate((0, 0), (2, 0), 1000.0)
    expected = 2 * p.router_delay_us + 1000.0 / p.bandwidth_flits_per_us
    assert est.latency_us == pytest.approx(expected)


def test_estimate_energy_formula(noc):
    p = noc.params
    est = noc.estimate((0, 0), (2, 0), 100.0)
    expected_pj = 100.0 * (2 * p.e_link_pj + 3 * p.e_router_pj)
    assert est.energy_uj == pytest.approx(expected_pj * 1e-6)


def test_contention_raises_latency(noc):
    free = noc.estimate((0, 0), (3, 0), 1000.0)
    noc.begin_transfer((0, 0), (3, 0), 2000.0)
    loaded = noc.estimate((0, 0), (3, 0), 1000.0)
    assert loaded.latency_us > free.latency_us


def test_disjoint_paths_do_not_contend(noc):
    noc.begin_transfer((0, 0), (3, 0), 2000.0)
    est = noc.estimate((0, 3), (3, 3), 1000.0)
    assert est.max_link_load == 0.0


def test_begin_end_transfer_balances_load(noc):
    noc.begin_transfer((0, 0), (3, 0), 500.0)
    noc.end_transfer((0, 0), (3, 0), 500.0)
    assert noc.estimate((0, 0), (3, 0), 100.0).max_link_load == 0.0


def test_release_below_zero_rejected(noc):
    noc.begin_transfer((0, 0), (1, 0), 100.0)
    noc.end_transfer((0, 0), (1, 0), 100.0)
    with pytest.raises(ValueError):
        noc.end_transfer((0, 0), (1, 0), 100.0)


def test_totals_accumulate(noc):
    noc.begin_transfer((0, 0), (2, 0), 100.0)
    noc.begin_transfer((0, 0), (0, 3), 50.0)
    assert noc.total_flits == 150.0
    assert noc.total_flit_hops == 100.0 * 2 + 50.0 * 3
    assert noc.average_hops() == pytest.approx((200.0 + 150.0) / 150.0)


def test_average_hops_empty(noc):
    assert noc.average_hops() == 0.0


def test_negative_volume_rejected(noc):
    with pytest.raises(ValueError):
        noc.estimate((0, 0), (1, 0), -1.0)


def test_parameters_validation():
    with pytest.raises(ValueError):
        NocParameters(bandwidth_flits_per_us=0.0)
    with pytest.raises(ValueError):
        NocParameters(router_delay_us=-1.0)

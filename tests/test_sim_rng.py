"""Tests for deterministic RNG stream derivation."""

from repro.sim.rng import StreamRegistry, derive_seed, make_rng


def test_derive_seed_is_deterministic():
    assert derive_seed(42, "workload") == derive_seed(42, "workload")


def test_derive_seed_differs_by_stream():
    assert derive_seed(42, "workload") != derive_seed(42, "faults")


def test_derive_seed_differs_by_master():
    assert derive_seed(1, "workload") != derive_seed(2, "workload")


def test_make_rng_reproducible_sequences():
    a = make_rng(7, "s")
    b = make_rng(7, "s")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_make_rng_streams_are_independent():
    a = make_rng(7, "a")
    b = make_rng(7, "b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_registry_returns_same_object_per_stream():
    reg = StreamRegistry(3)
    assert reg.stream("x") is reg.stream("x")


def test_registry_streams_share_state():
    reg = StreamRegistry(3)
    first = reg.stream("x").random()
    second = reg.stream("x").random()
    assert first != second  # state advanced, not reset


def test_registry_matches_make_rng():
    reg = StreamRegistry(9)
    assert reg.stream("y").random() == make_rng(9, "y").random()

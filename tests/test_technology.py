"""Tests for technology-node models and dark-silicon arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro.platform.technology import (
    DEFAULT_TDP_W,
    TECHNOLOGY_NODES,
    TechnologyNode,
    get_node,
    node_names,
)


def test_all_four_nodes_present():
    assert set(TECHNOLOGY_NODES) == {"45nm", "32nm", "22nm", "16nm"}


def test_node_names_ordered_old_to_new():
    assert node_names() == ["45nm", "32nm", "22nm", "16nm"]


def test_get_node_unknown_raises_with_candidates():
    with pytest.raises(KeyError, match="16nm"):
        get_node("7nm")


def test_frequency_at_nominal_matches(node16):
    assert node16.frequency_at(node16.vdd_nominal) == pytest.approx(
        node16.f_nominal_mhz
    )


def test_frequency_below_threshold_is_zero(node16):
    assert node16.frequency_at(node16.vth - 0.01) == 0.0


def test_frequency_monotonic_in_voltage(node16):
    volts = [node16.vdd_min + i * 0.05 for i in range(8)]
    freqs = [node16.frequency_at(v) for v in volts]
    assert freqs == sorted(freqs)
    assert freqs[0] < freqs[-1]


def test_dynamic_power_scales_with_square_of_voltage(node16):
    f = 1000.0
    p_low = node16.dynamic_power(0.5, f)
    p_high = node16.dynamic_power(1.0, f)
    assert p_high == pytest.approx(4.0 * p_low)


def test_dynamic_power_scales_linearly_with_frequency(node16):
    v = 0.8
    assert node16.dynamic_power(v, 2000.0) == pytest.approx(
        2.0 * node16.dynamic_power(v, 1000.0)
    )


def test_dynamic_power_scales_with_activity(node16):
    assert node16.dynamic_power(0.8, 1000.0, activity=0.5) == pytest.approx(
        0.5 * node16.dynamic_power(0.8, 1000.0)
    )


def test_negative_activity_rejected(node16):
    with pytest.raises(ValueError):
        node16.dynamic_power(0.8, 1000.0, activity=-0.1)


def test_leakage_power_decreases_at_lower_voltage(node16):
    assert node16.leakage_power(node16.vdd_min) < node16.leakage_power(
        node16.vdd_nominal
    )


def test_leakage_power_zero_when_unpowered(node16):
    assert node16.leakage_power(0.0) == 0.0


def test_leakage_at_nominal_matches_parameter(node16):
    assert node16.leakage_power(node16.vdd_nominal) == pytest.approx(
        node16.leak_w_nominal
    )


def test_peak_core_power_is_dyn_plus_leak(node16):
    expected = node16.dynamic_power(
        node16.vdd_nominal, node16.f_nominal_mhz
    ) + node16.leakage_power(node16.vdd_nominal)
    assert node16.peak_core_power() == pytest.approx(expected)


def test_dark_silicon_fraction_grows_with_scaling():
    """The utilization-wall trend: lit fraction shrinks every generation."""
    lits = [
        get_node(name).lit_fraction(64, DEFAULT_TDP_W) for name in node_names()
    ]
    assert lits == sorted(lits, reverse=True)
    assert lits[0] > 0.85      # 45 nm almost fully lit
    assert lits[-1] < 0.45     # 16 nm under half lit


def test_lit_fraction_clipped_at_one(node45):
    assert node45.lit_fraction(1, 1000.0) == 1.0


def test_dark_fraction_is_complement(node16):
    assert node16.dark_fraction(64, 80.0) == pytest.approx(
        1.0 - node16.lit_fraction(64, 80.0)
    )


def test_lit_fraction_rejects_bad_core_count(node16):
    with pytest.raises(ValueError):
        node16.lit_fraction(0, 80.0)


def test_invalid_voltage_ordering_rejected():
    with pytest.raises(ValueError):
        TechnologyNode(
            name="bad", feature_nm=10, vdd_nominal=0.5, vdd_min=0.6,
            vth=0.3, f_nominal_mhz=1000.0, ceff_nf=0.5, leak_w_nominal=0.1,
        )


def test_invalid_frequency_rejected():
    with pytest.raises(ValueError):
        TechnologyNode(
            name="bad", feature_nm=10, vdd_nominal=1.0, vdd_min=0.5,
            vth=0.3, f_nominal_mhz=0.0, ceff_nf=0.5, leak_w_nominal=0.1,
        )


@given(st.floats(min_value=0.46, max_value=0.9))
def test_frequency_never_negative_in_operating_range(vdd):
    node = get_node("16nm")
    assert node.frequency_at(vdd) >= 0.0


@given(
    st.floats(min_value=0.45, max_value=0.9),
    st.floats(min_value=100.0, max_value=3500.0),
)
def test_power_positive_in_operating_range(vdd, f):
    node = get_node("16nm")
    assert node.dynamic_power(vdd, f) > 0.0
    assert node.leakage_power(vdd) > 0.0

"""Golden regression pins.

A deterministic simulator should produce bit-identical results for a
fixed seed until someone *intentionally* changes model behaviour.  These
pins catch silent behavioural drift (a reordered event, an accidental RNG
draw) that the invariant-based tests would miss.  If you change the model
on purpose, update the pinned values and say so in the commit.
"""

import pytest

from repro.core.system import SystemConfig, run_system

GOLDEN_CONFIG = SystemConfig(
    width=4,
    height=4,
    node_name="16nm",
    tdp_w=25.0,
    horizon_us=8_000.0,
    arrival_rate_per_ms=10.0,
    profile_names=("small",),
    profile_weights=(1.0,),
    seed=1234,
    min_test_interval_us=1_000.0,
)


@pytest.fixture(scope="module")
def golden():
    return run_system(GOLDEN_CONFIG)


def test_golden_counters_are_integers_and_stable(golden):
    s = golden.summary()
    assert s["apps_completed"] == golden.metrics.apps_completed
    assert s["tasks_completed"] == golden.metrics.tasks_completed


def test_golden_run_reproduces_itself(golden):
    again = run_system(GOLDEN_CONFIG)
    assert again.summary() == golden.summary()
    assert again.events_fired == golden.events_fired
    assert again.per_core_tests == golden.per_core_tests
    assert again.per_core_busy_us == golden.per_core_busy_us


def test_golden_structural_expectations(golden):
    """Loose structural pins that any correct model version satisfies."""
    s = golden.summary()
    assert s["apps_completed"] > 20
    assert s["tests_completed"] > 5
    assert s["budget_violation_rate"] == 0.0
    assert 0.0 < s["test_power_share"] < 0.2
    assert 0.0 < s["avg_power_w"] <= GOLDEN_CONFIG.tdp_w


def test_golden_trace_integrals_consistent(golden):
    """Channel energies must sum to the total energy."""
    horizon = GOLDEN_CONFIG.horizon_us
    total = golden.metrics.energy_uj("total", horizon)
    parts = sum(
        golden.metrics.energy_uj(ch, horizon)
        for ch in ("workload", "test", "leakage", "noc")
    )
    assert parts == pytest.approx(total, rel=1e-9)


def test_golden_seed_sensitivity():
    """A one-off seed change must actually change the run."""
    from dataclasses import replace

    other = run_system(replace(GOLDEN_CONFIG, seed=1235))
    base = run_system(GOLDEN_CONFIG)
    assert other.summary() != base.summary()

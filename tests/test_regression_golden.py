"""Golden regression pins.

A deterministic simulator should produce bit-identical results for a
fixed seed until someone *intentionally* changes model behaviour.  These
pins catch silent behavioural drift (a reordered event, an accidental RNG
draw) that the invariant-based tests would miss.  If you change the model
on purpose, update the pinned values and say so in the commit.
"""

import pytest

from repro.core.system import SystemConfig, run_system
from repro.obs.journal import Journal
from repro.obs.provenance import digest_of

from tests.conftest import small_system_config

GOLDEN_CONFIG = small_system_config(
    horizon_us=8_000.0,
    profile_names=("small",),
    profile_weights=(1.0,),
    seed=1234,
)


@pytest.fixture(scope="module")
def golden():
    return run_system(GOLDEN_CONFIG)


def test_golden_counters_are_integers_and_stable(golden):
    s = golden.summary()
    assert s["apps_completed"] == golden.metrics.apps_completed
    assert s["tasks_completed"] == golden.metrics.tasks_completed


def test_golden_run_reproduces_itself(golden):
    again = run_system(GOLDEN_CONFIG)
    assert again.summary() == golden.summary()
    assert again.events_fired == golden.events_fired
    assert again.per_core_tests == golden.per_core_tests
    assert again.per_core_busy_us == golden.per_core_busy_us


def test_golden_structural_expectations(golden):
    """Loose structural pins that any correct model version satisfies."""
    s = golden.summary()
    assert s["apps_completed"] > 20
    assert s["tests_completed"] > 5
    assert s["budget_violation_rate"] == 0.0
    assert 0.0 < s["test_power_share"] < 0.2
    assert 0.0 < s["avg_power_w"] <= GOLDEN_CONFIG.tdp_w


def test_golden_trace_integrals_consistent(golden):
    """Channel energies must sum to the total energy."""
    horizon = GOLDEN_CONFIG.horizon_us
    total = golden.metrics.energy_uj("total", horizon)
    parts = sum(
        golden.metrics.energy_uj(ch, horizon)
        for ch in ("workload", "test", "leakage", "noc")
    )
    assert parts == pytest.approx(total, rel=1e-9)


# ----------------------------------------------------------------------
# Per-subsystem mini-goldens
#
# The summary pins above catch *whole-run* drift but cannot localise it.
# These digests pin one subsystem's decision stream each — the test
# scheduler's launch/defer sequence, the PID/DVFS control trace, and the
# mapper's placements — so a regression points at the layer that moved.
# Recompute a digest with the projection below after an intentional
# model change.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def golden_journal(golden):
    journal = Journal(level="info")
    result = run_system(GOLDEN_CONFIG, journal=journal)
    # Journaling is read-only: same run as the unjournaled golden.
    assert result.summary() == golden.summary()
    return journal


def _stream_digest(journal, types):
    """Order-preserving digest of the full payloads of selected events."""
    return digest_of(
        (event.time, event.type, tuple(sorted(event.data.items())))
        for event in journal.events
        if event.type in types
    )


def test_golden_scheduler_decision_stream(golden_journal):
    counts = golden_journal.counts()
    assert counts["test.launch"] == 25
    assert "test.defer" not in counts  # budget never forces a deferral here
    assert _stream_digest(golden_journal, {"test.launch", "test.defer"}) == (
        "9c6e80d0a318e65e997ca234f7b2432e682a921dc74170f981233d5d54bb3d89"
    )


def test_golden_pid_control_trace(golden_journal):
    counts = golden_journal.counts()
    assert counts["pid.step"] == 80
    assert counts["dvfs.change"] == 1
    assert _stream_digest(golden_journal, {"pid.step", "dvfs.change"}) == (
        "f6140ba7deaf1266aa21e13efe4f83477cd9621c1c7a3be7a94a5ca6f8764287"
    )


def test_golden_mapping_placements(golden_journal):
    counts = golden_journal.counts()
    assert counts["app.map"] == 73
    assert counts["app.map"] == counts["app.arrival"]
    assert _stream_digest(golden_journal, {"app.map"}) == (
        "e3a16b2616c51defe111081a5f6f23aae17f1ae57f45a760b096bb8932e33e70"
    )


def test_golden_seed_sensitivity():
    """A one-off seed change must actually change the run."""
    from dataclasses import replace

    other = run_system(replace(GOLDEN_CONFIG, seed=1235))
    base = run_system(GOLDEN_CONFIG)
    assert other.summary() != base.summary()

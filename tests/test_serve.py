"""Tests for the simulation service (``repro.serve``).

The contract under test is the one ``docs/serving.md`` promises:

* request validation rejects malformed specs with clear errors (HTTP
  400) before anything is queued;
* tenant quotas and the global queue bound reject overload atomically
  (HTTP 429 + Retry-After) — an over-quota request admits *nothing*;
* identical in-flight points **coalesce**: two concurrent requests for
  the same digest cost one simulation and resolve to the same payload;
* the JSONL framing round-trips bytes -> events -> bytes;
* graceful drain finishes every admitted point and refuses new ones;
* and above all, **served == direct**: the ``result_digest`` of a point
  fetched through the server equals the digest of the same config run
  straight through ``run_many`` — serial, pooled, cached or coalesced.

Engine-level tests drive :class:`repro.serve.ServeEngine` directly on
an event loop (no sockets); HTTP-level tests boot a real
:class:`repro.serve.ReproServer` on an ephemeral localhost port.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.batch import result_digest
from repro.cache import RunCache
from repro.core.system import SystemConfig
from repro.experiments.parallel import run_many
from repro.serve import (
    CampaignManager,
    QuotaError,
    QuotaExceeded,
    ReproServer,
    ServeClient,
    ServeConfig,
    ServeEngine,
    ServerDraining,
    ServerError,
    SpecError,
    SweepRequest,
    decode_line,
    encode_line,
    fetch_status,
    sweep_request_doc,
)
from repro.serve.protocol import CampaignRequest

from tests.conftest import small_sweep_base

SMALL = small_sweep_base()


def run_async(coro):
    """Run one coroutine on a fresh event loop (py3.8-friendly helper)."""
    return asyncio.run(coro)


def sweep_doc(seeds, tenant="t", **base):
    merged = dict(SMALL)
    merged.update(base)
    return sweep_request_doc(
        [{"seed": s} for s in seeds], tenant=tenant, base=merged
    )


# ----------------------------------------------------------------------
# Protocol validation
# ----------------------------------------------------------------------
class TestSweepRequestValidation:
    def test_resolves_layered_points(self):
        req = SweepRequest.parse(
            {
                "tenant": "alice",
                "base": {"width": 2, "height": 2},
                "points": [{"seed": 1}, {"seed": 2, "tdp_w": 40.0}],
            }
        )
        assert [p.config.seed for p in req.points] == [1, 2]
        assert all(p.config.width == 2 for p in req.points)
        assert req.points[1].config.tdp_w == 40.0
        assert len({p.digest for p in req.points}) == 2

    def test_seed_cross_product(self):
        req = SweepRequest.parse(
            {"points": [{"width": 2, "height": 2}], "seeds": [5, 6, 7]}
        )
        assert [p.config.seed for p in req.points] == [5, 6, 7]

    @pytest.mark.parametrize(
        "doc, fragment",
        [
            ({"points": []}, "non-empty"),
            ({"points": "nope"}, "non-empty"),
            ({}, "points"),
            ({"points": [{}], "bogus": 1}, "unknown request keys"),
            ({"points": [{"no_such_field": 1}]}, "no_such_field"),
            ({"points": [{}], "seeds": []}, "seeds"),
            ({"points": [{}], "seeds": [1, True]}, "seeds"),
            ({"points": [{}], "tenant": ""}, "tenant"),
            ({"points": [{}], "tenant": "a b"}, "tenant"),
            ({"points": [{}], "tenant": 7}, "tenant"),
            ({"points": [3]}, r"points\[0\]"),
            ({"points": [{"seed": "x"}]}, r"points\[0\]"),
        ],
    )
    def test_rejects_bad_documents(self, doc, fragment):
        with pytest.raises(SpecError, match=fragment):
            SweepRequest.parse(doc)

    def test_rejects_oversize_requests(self):
        with pytest.raises(SpecError, match="ceiling"):
            SweepRequest.parse(
                {"points": [{}], "seeds": list(range(10))}, max_points=9
            )

    def test_campaign_request_round_trips_spec(self):
        req = CampaignRequest.parse(
            {
                "tenant": "bob",
                "spec": {
                    "name": "c1",
                    "base": SMALL,
                    "grid": {"tdp_w": [40.0]},
                    "seeds": {"count": 2},
                },
                "jobs": 0,
            }
        )
        assert req.spec.name == "c1"
        assert req.jobs == 0

    @pytest.mark.parametrize(
        "doc, fragment",
        [
            ({"spec": None}, "spec"),
            ({"spec": {"name": "x", "grid": {"bogus": [1]}}}, "spec"),
            ({"spec": {"name": "x", "grid": {}}, "jobs": -1}, "jobs"),
            ({"spec": {"name": "x", "grid": {}}, "batch": 0}, "batch"),
        ],
    )
    def test_campaign_request_rejections(self, doc, fragment):
        with pytest.raises(SpecError, match=fragment):
            CampaignRequest.parse(doc)


# ----------------------------------------------------------------------
# JSONL framing
# ----------------------------------------------------------------------
class TestFraming:
    def test_encode_decode_round_trip(self):
        event = {"event": "result", "index": 3, "summary": {"x": 1.5}}
        line = encode_line(event)
        assert line.endswith(b"\n") and line.count(b"\n") == 1
        assert decode_line(line) == event
        assert decode_line(line.rstrip(b"\n")) == event

    def test_encoding_is_deterministic(self):
        a = encode_line({"b": 1, "a": 2})
        b = encode_line({"a": 2, "b": 1})
        assert a == b  # sorted keys -> byte-identical frames

    def test_decode_rejects_garbage(self):
        with pytest.raises(SpecError):
            decode_line(b"not json\n")
        with pytest.raises(SpecError):
            decode_line(b"[1, 2]\n")

    def test_stream_of_frames_splits_cleanly(self):
        events = [{"i": i} for i in range(5)]
        blob = b"".join(encode_line(e) for e in events)
        parsed = [decode_line(l) for l in blob.splitlines()]
        assert parsed == events


# ----------------------------------------------------------------------
# Engine: coalescing, quotas, draining
# ----------------------------------------------------------------------
async def _with_engine(body, **kwargs):
    engine = ServeEngine(jobs=0, **kwargs)
    await engine.start()
    try:
        return await body(engine)
    finally:
        await engine.drain(30.0)
        await engine.stop()


class TestEngine:
    def test_intra_request_coalescing(self):
        async def body(engine):
            req = SweepRequest.parse(
                {"points": [{"seed": 1}, {"seed": 1}], "base": SMALL}
            )
            tickets = engine.submit(req)
            assert [t.source for t in tickets] == ["queued", "coalesced"]
            assert tickets[0].future is tickets[1].future
            payloads = await asyncio.gather(*[t.future for t in tickets])
            assert payloads[0].result_digest == payloads[1].result_digest
            return engine.stats()

        stats = run_async(_with_engine(body))
        assert stats["counters"]["serve.computed"] == 1
        assert stats["counters"]["serve.coalesced"] == 1

    def test_cross_request_coalescing_costs_one_simulation(self):
        async def body(engine):
            doc = {"points": [{"seed": 3}], "base": SMALL}
            # Two submissions with no await between them: the second is
            # guaranteed to see the first still in flight.
            t1 = engine.submit(SweepRequest.parse(dict(doc, tenant="a")))
            t2 = engine.submit(SweepRequest.parse(dict(doc, tenant="b")))
            assert t1[0].source == "queued"
            assert t2[0].source == "coalesced"
            p1, p2 = await asyncio.gather(t1[0].future, t2[0].future)
            assert p1.result_digest == p2.result_digest
            return engine.stats()

        stats = run_async(_with_engine(body))
        assert stats["counters"]["serve.computed"] == 1

    def test_tenant_quota_rejects_whole_request(self):
        async def body(engine):
            big = SweepRequest.parse(
                {"points": [{"seed": s} for s in range(1, 4)], "base": SMALL}
            )
            with pytest.raises(QuotaExceeded) as err:
                engine.submit(big)
            assert err.value.retry_after_s > 0
            # Nothing was admitted: a small request still fits.
            small = SweepRequest.parse(
                {"points": [{"seed": 9}, {"seed": 10}], "base": SMALL}
            )
            tickets = engine.submit(small)
            await asyncio.gather(*[t.future for t in tickets])
            return engine.stats()

        stats = run_async(_with_engine(body, tenant_quota=2))
        assert stats["counters"]["serve.rejected"] == 1
        assert stats["counters"]["serve.computed"] == 2

    def test_global_queue_bound(self):
        async def body(engine):
            with pytest.raises(QuotaExceeded, match="queue full"):
                engine.submit(
                    SweepRequest.parse(
                        {
                            "points": [{"seed": s} for s in range(1, 6)],
                            "base": SMALL,
                        }
                    )
                )

        run_async(_with_engine(body, max_queue=4, tenant_quota=100))

    def test_coalesced_and_cached_points_are_quota_free(self):
        async def body(engine):
            first = engine.submit(
                SweepRequest.parse(
                    {"points": [{"seed": 1}], "base": SMALL, "tenant": "a"}
                )
            )
            # Tenant b's quota is 1, and this request holds 1 fresh +
            # 1 coalesced point: it must still be admitted.
            second = engine.submit(
                SweepRequest.parse(
                    {
                        "points": [{"seed": 1}, {"seed": 2}],
                        "base": SMALL,
                        "tenant": "b",
                    }
                )
            )
            assert [t.source for t in second] == ["coalesced", "queued"]
            await asyncio.gather(
                *[t.future for t in first + second]
            )

        run_async(_with_engine(body, tenant_quota=1))

    def test_draining_rejects_submissions(self):
        async def body(engine):
            await engine.drain(10.0)
            with pytest.raises(ServerDraining):
                engine.submit(
                    SweepRequest.parse({"points": [{}], "base": SMALL})
                )

        run_async(_with_engine(body))

    def test_drain_completes_admitted_work(self):
        async def body(engine):
            tickets = engine.submit(
                SweepRequest.parse(
                    {"points": [{"seed": s} for s in (1, 2, 3)],
                     "base": SMALL}
                )
            )
            assert await engine.drain(60.0) is True
            # Every admitted future resolved even though drain started
            # before the work finished.
            for ticket in tickets:
                assert ticket.future.done()
                assert ticket.future.result().result_digest

        run_async(_with_engine(body))

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            ServeEngine(jobs=-1)
        with pytest.raises(ValueError):
            ServeEngine(jobs=True)
        with pytest.raises(ValueError):
            ServeEngine(batch_size=0)
        with pytest.raises(ValueError):
            ServeEngine(max_queue=0)
        with pytest.raises(ValueError):
            ServeEngine(tenant_quota=0)


# ----------------------------------------------------------------------
# Determinism: served == direct
# ----------------------------------------------------------------------
class TestServedEqualsDirect:
    SEEDS = (1, 2, 3)

    def _direct_digests(self):
        configs = [
            SystemConfig(**SMALL, seed=seed) for seed in self.SEEDS
        ]
        return [result_digest(r) for r in run_many(configs)]

    def _served_digests(self, **engine_kwargs):
        async def body(engine):
            tickets = engine.submit(
                SweepRequest.parse(
                    {
                        "points": [{"seed": s} for s in self.SEEDS],
                        "base": SMALL,
                    }
                )
            )
            payloads = await asyncio.gather(*[t.future for t in tickets])
            return [p.result_digest for p in payloads]

        return run_async(_with_engine(body, **engine_kwargs))

    def test_threaded_engine_matches_run_many(self):
        assert self._served_digests() == self._direct_digests()

    def test_batched_engine_matches_run_many(self):
        assert (
            self._served_digests(batch_size=3) == self._direct_digests()
        )

    def test_cached_engine_matches_run_many(self, tmp_path):
        cache = RunCache(cache_dir=str(tmp_path / "cache"))
        digests = self._served_digests(cache=cache)
        assert digests == self._direct_digests()
        # Second pass is served entirely from cache — same digests.
        assert self._served_digests(cache=cache) == digests


# ----------------------------------------------------------------------
# HTTP server
# ----------------------------------------------------------------------
async def _with_server(body, **config_kwargs):
    config = ServeConfig(**config_kwargs)
    server = ReproServer(config)
    await server.start()
    client = ServeClient("127.0.0.1", server.port)
    try:
        return await body(server, client)
    finally:
        server.request_shutdown()
        await server.shutdown()


class TestHttpServer:
    def test_healthz_status_metrics(self, tmp_path):
        async def body(server, client):
            health = await client.healthz()
            assert health["ok"] is True and health["state"] == "serving"
            status = await client.status()
            assert status["schema"] == "repro.serve.status/1"
            assert "engine" in status and "tenants" in status
            await client.sweep(sweep_doc((1,), tenant="probe"))
            metrics = await client.metrics_text()
            assert "serve" in metrics

        run_async(_with_server(body, state_dir=str(tmp_path)))

    def test_sweep_stream_and_digest_identity(self, tmp_path):
        async def body(server, client):
            events = await client.sweep(sweep_doc((1, 2), tenant="alice"))
            kinds = [e["event"] for e in events]
            assert kinds[0] == "accepted" and kinds[-1] == "done"
            results = ServeClient.results_by_index(events)
            assert sorted(results) == [0, 1]
            direct = run_many(
                [SystemConfig(**SMALL, seed=s) for s in (1, 2)]
            )
            for index, result in enumerate(direct):
                assert (
                    results[index]["result_digest"]
                    == result_digest(result)
                )
            done = events[-1]
            assert done["ok"] == 2 and done["errors"] == 0

        run_async(_with_server(body, state_dir=str(tmp_path)))

    def test_http_validation_errors(self, tmp_path):
        async def body(server, client):
            with pytest.raises(ServerError) as err:
                await client.sweep({"tenant": "x", "points": []})
            assert err.value.status == 400
            with pytest.raises(ServerError) as err:
                await client.get_json("/no/such/path")
            assert err.value.status == 404

        run_async(_with_server(body, state_dir=str(tmp_path)))

    def test_http_quota_rejection_carries_retry_after(self, tmp_path):
        async def body(server, client):
            with pytest.raises(QuotaError) as err:
                await client.sweep(sweep_doc(range(1, 9), tenant="greedy"))
            assert err.value.status == 429
            assert err.value.retry_after_s > 0

        run_async(
            _with_server(body, state_dir=str(tmp_path), tenant_quota=2)
        )

    def test_concurrent_identical_sweeps_coalesce(self, tmp_path):
        async def body(server, client):
            doc_a = sweep_doc((7,), tenant="a", horizon_us=4000.0)
            doc_b = sweep_doc((7,), tenant="b", horizon_us=4000.0)
            ev_a, ev_b = await asyncio.gather(
                client.sweep(doc_a), client.sweep(doc_b)
            )
            ra = ServeClient.results_by_index(ev_a)[0]
            rb = ServeClient.results_by_index(ev_b)[0]
            assert ra["result_digest"] == rb["result_digest"]
            status = await client.status()
            counters = status["engine"]["counters"]
            # The two streams asked for the same digest; at most one
            # simulation ran (the other side coalesced or, if already
            # finished, was... still exactly one computation).
            assert counters["serve.computed"] == 1

        run_async(_with_server(body, state_dir=str(tmp_path)))

    def test_graceful_drain_completes_inflight(self, tmp_path):
        async def body(server, client):
            stream = client.sweep_events(
                sweep_doc((1, 2, 3), tenant="drainer")
            )
            first = await stream.__anext__()
            assert first["event"] == "accepted"
            # Shut down while the sweep is mid-flight: the stream must
            # still deliver every result and the terminal event.
            shutdown = asyncio.ensure_future(server.shutdown())
            events = [event async for event in stream]
            assert events[-1]["event"] == "done"
            assert events[-1]["ok"] == 3
            assert await shutdown is True

        run_async(_with_server(body, state_dir=str(tmp_path)))

    def test_draining_server_returns_503(self, tmp_path):
        async def body(server, client):
            # Flip admissions off (drain with nothing in flight returns
            # immediately) while the listener is still open.
            server.state = "draining"
            assert await server.engine.drain(5.0) is True
            with pytest.raises(ServerError) as err:
                await client.sweep(sweep_doc((9,), tenant="late"))
            assert err.value.status == 503
            with pytest.raises(ServerError) as err:
                await client.campaign(
                    {"tenant": "late", "spec": {"name": "n", "grid": {}}}
                )
            assert err.value.status == 503
            # Health endpoint still answers during a drain.
            health = await client.healthz()
            assert health["state"] == "draining"

        run_async(_with_server(body, state_dir=str(tmp_path)))

    def test_campaign_round_trip_matches_direct(self, tmp_path):
        from repro.campaign import CampaignSpec, run_campaign

        spec_doc = {
            "name": "served",
            "base": SMALL,
            "grid": {"tdp_w": [40.0]},
            "seeds": {"count": 2},
        }

        async def body(server, client):
            done = await client.campaign(
                {"tenant": "alice", "spec": spec_doc}
            )
            assert done["state"] == "complete"
            return done

        done = run_async(_with_server(body, state_dir=str(tmp_path)))
        direct = run_campaign(
            str(tmp_path / "direct"),
            spec=CampaignSpec.from_dict(spec_doc),
            telemetry=False,
        )
        assert done["aggregate_digest"] == direct.aggregate
        assert done["n_completed"] == direct.n_completed


# ----------------------------------------------------------------------
# Campaign manager: resume identity without HTTP
# ----------------------------------------------------------------------
class TestCampaignManager:
    def _spec(self):
        from repro.campaign import CampaignSpec

        return CampaignSpec.from_dict(
            {
                "name": "mgr",
                "base": SMALL,
                "grid": {"tdp_w": [40.0]},
                "seeds": {"count": 2},
            }
        )

    def test_submit_and_coalesce(self, tmp_path):
        manager = CampaignManager(str(tmp_path))
        job = manager.submit(self._spec())
        again = manager.submit(self._spec())
        assert again is job  # identical spec coalesces onto running job
        assert job.done.wait(120.0)
        assert job.state == "complete"
        assert job.aggregate_digest

    def test_resubmit_after_completion_is_identical(self, tmp_path):
        manager = CampaignManager(str(tmp_path))
        job = manager.submit(self._spec())
        assert job.done.wait(120.0)
        second = manager.submit(self._spec())
        assert second.done.wait(120.0)
        assert second.resumed is True
        assert second.aggregate_digest == job.aggregate_digest

    def test_resume_incomplete_picks_up_orphan_dirs(self, tmp_path):
        spec = self._spec()
        manager = CampaignManager(str(tmp_path))
        job_id = manager._job_id(spec)
        # Simulate a server killed before running anything: the spec
        # was persisted but no results/manifest exist.
        import os

        directory = os.path.join(manager.root, job_id)
        os.makedirs(directory)
        spec.save(os.path.join(directory, "spec.json"))
        fresh = CampaignManager(str(tmp_path))
        resumed = fresh.resume_incomplete()
        assert [j.job_id for j in resumed] == [job_id]
        assert resumed[0].done.wait(120.0)
        assert resumed[0].state == "complete"


# ----------------------------------------------------------------------
# top --url plumbing
# ----------------------------------------------------------------------
class TestTopUrl:
    def test_fetch_status_and_cli_render(self, tmp_path, capsys):
        from repro.cli import main

        holder = {}
        ready = threading.Event()
        stop = threading.Event()

        def serve():
            async def run():
                server = ReproServer(
                    ServeConfig(state_dir=str(tmp_path))
                )
                await server.start()
                holder["port"] = server.port
                ready.set()
                while not stop.is_set():
                    await asyncio.sleep(0.02)
                server.request_shutdown()
                await server.shutdown()

            asyncio.run(run())

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        assert ready.wait(30.0)
        try:
            url = f"127.0.0.1:{holder['port']}"
            doc = fetch_status(url)
            assert doc["schema"] == "repro.serve.status/1"
            rc = main(["top", "--url", url])
            assert rc == 0
            out = capsys.readouterr().out
            assert "repro-serve" in out
            assert "serving" in out
        finally:
            stop.set()
            thread.join(timeout=30.0)

    def test_top_requires_some_target(self, capsys):
        from repro.cli import main

        assert main(["top"]) == 2
        assert "campaign directories" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Final status exports on shutdown
# ----------------------------------------------------------------------
class TestStateFlush:
    def test_shutdown_writes_status_and_metrics(self, tmp_path):
        async def body(server, client):
            await client.sweep(sweep_doc((1,), tenant="flush"))

        run_async(_with_server(body, state_dir=str(tmp_path)))
        status = json.loads((tmp_path / "status.json").read_text())
        assert status["state"] == "stopped"
        assert status["points_done"] >= 1
        prom = (tmp_path / "telemetry.prom").read_text()
        assert "serve" in prom

"""Tests for power-management policies (PID, naive, worst-case, no-op)."""

import pytest

from repro.platform.core import CoreState
from repro.power.budget import PowerBudget
from repro.power.manager import (
    NaiveTDPManager,
    NoOpPowerManager,
    PIDPowerManager,
    WorstCaseTDPManager,
    make_power_manager,
)
from repro.power.meter import PowerMeter


def direct_actuator(core, level):
    """Test double for the executor: apply the level with no re-timing."""
    core.level = level


def make(chip, policy, tdp):
    meter = PowerMeter(chip)
    budget = PowerBudget(tdp, guard_fraction=0.0)
    manager = make_power_manager(policy, chip, meter, budget)
    manager.bind_actuator(direct_actuator)
    return manager, meter, budget


def occupy(chip, n, level=None):
    """Mark the first ``n`` cores busy at ``level`` (default nominal)."""
    lvl = level if level is not None else chip.vf_table.max_level
    for i in range(n):
        core = chip.core(i)
        core.state = CoreState.BUSY
        core.level = lvl
    return [chip.core(i) for i in range(n)]


# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------
def test_factory_known_policies(chip44):
    for policy, cls in (
        ("pid", PIDPowerManager),
        ("naive", NaiveTDPManager),
        ("worst-case", WorstCaseTDPManager),
        ("none", NoOpPowerManager),
    ):
        manager, _, _ = make(chip44, policy, 20.0)
        assert isinstance(manager, cls)
        assert manager.name == policy


def test_factory_unknown_policy(chip44):
    meter = PowerMeter(chip44)
    with pytest.raises(ValueError, match="unknown power policy"):
        make_power_manager("bogus", chip44, meter, PowerBudget(20.0))


# ----------------------------------------------------------------------
# NoOp
# ----------------------------------------------------------------------
def test_noop_never_changes_levels(chip44):
    manager, _, _ = make(chip44, "none", 1.0)  # absurdly tight budget
    cores = occupy(chip44, 16)
    manager.tick(0.0, 100.0)
    assert all(c.level.index == len(chip44.vf_table) - 1 for c in cores)
    assert manager.level_changes == 0


# ----------------------------------------------------------------------
# Naive
# ----------------------------------------------------------------------
def test_naive_steps_down_when_over_cap(chip44):
    manager, meter, _ = make(chip44, "naive", 5.0)
    cores = occupy(chip44, 16)
    assert meter.chip_power() > 5.0
    manager.tick(0.0, 100.0)
    top = len(chip44.vf_table) - 1
    assert all(c.level.index == top - 1 for c in cores)


def test_naive_steps_up_when_far_below_cap(chip44):
    manager, _, _ = make(chip44, "naive", 1000.0)
    cores = occupy(chip44, 2, level=chip44.vf_table[2])
    manager._global_level = chip44.vf_table[2]
    manager.tick(0.0, 100.0)
    assert all(c.level.index == 3 for c in cores)


def test_naive_holds_between_thresholds(chip44):
    manager, meter, budget = make(chip44, "naive", 20.0)
    occupy(chip44, 5)  # ~15.5 W: between 0.7*20 and 20
    power = meter.chip_power()
    assert 0.7 * budget.guarded_cap < power <= budget.guarded_cap
    manager.tick(0.0, 100.0)
    assert manager.level_changes == 0


def test_naive_start_level_follows_global(chip44):
    manager, _, _ = make(chip44, "naive", 5.0)
    occupy(chip44, 16)
    manager.tick(0.0, 100.0)
    assert manager.preferred_start_level().index == len(chip44.vf_table) - 2


def test_naive_relax_fraction_validation(chip44):
    meter = PowerMeter(chip44)
    with pytest.raises(ValueError):
        NaiveTDPManager(chip44, meter, PowerBudget(20.0), relax_fraction=1.5)


# ----------------------------------------------------------------------
# Worst-case
# ----------------------------------------------------------------------
def test_worst_case_slot_arithmetic(chip44):
    manager, _, _ = make(chip44, "worst-case", 20.0)
    peak = chip44.node.peak_core_power()
    expected = int(20.0 / peak)
    assert manager.max_active_cores() == expected
    assert manager.spare_core_slots() == expected
    occupy(chip44, 2)
    assert manager.spare_core_slots() == expected - 2


def test_worst_case_slots_never_negative(chip44):
    manager, _, _ = make(chip44, "worst-case", 20.0)
    occupy(chip44, 16)
    assert manager.spare_core_slots() == 0


def test_worst_case_counts_testing_cores(chip44):
    manager, _, _ = make(chip44, "worst-case", 20.0)
    before = manager.spare_core_slots()
    chip44.core(0).state = CoreState.TESTING
    assert manager.spare_core_slots() == before - 1


def test_worst_case_never_uses_dvfs(chip44):
    manager, _, _ = make(chip44, "worst-case", 20.0)
    occupy(chip44, 16)
    manager.tick(0.0, 100.0)
    assert manager.level_changes == 0


def test_dvfs_policies_have_no_slot_limit(chip44):
    for policy in ("pid", "naive", "none"):
        manager, _, _ = make(chip44, policy, 20.0)
        assert manager.spare_core_slots() is None


# ----------------------------------------------------------------------
# PID
# ----------------------------------------------------------------------
def test_pid_throttles_over_budget_chip(chip44):
    manager, meter, budget = make(chip44, "pid", 20.0)
    occupy(chip44, 16)  # ~49 W >> 20 W
    before = meter.chip_power()
    for _ in range(20):
        manager.tick(0.0, 100.0)
    after = meter.chip_power()
    assert after < before
    assert after <= budget.guarded_cap * 1.05


def test_pid_raises_levels_with_headroom(chip44):
    manager, meter, budget = make(chip44, "pid", 20.0)
    cores = occupy(chip44, 2, level=chip44.vf_table[0])
    for _ in range(30):
        manager.tick(100.0, 100.0)
    # Two cores at nominal are ~6.2 W << 20 W: PID should lift them fully.
    assert all(c.level.index == len(chip44.vf_table) - 1 for c in cores)


def test_pid_does_not_touch_testing_cores(chip44):
    manager, _, _ = make(chip44, "pid", 1.0)
    core = chip44.core(0)
    core.state = CoreState.TESTING
    level_before = core.level.index
    manager.tick(0.0, 100.0)
    assert core.level.index == level_before


def test_pid_start_level_fits_headroom(chip44):
    manager, meter, budget = make(chip44, "pid", 20.0)
    occupy(chip44, 6)  # ~18.6 W of 20 W: nominal no longer fits
    level = manager.start_level_for(chip44.core(10), activity=1.0)
    added = meter.added_power_if_busy(chip44.core(10), level, 1.0)
    assert meter.chip_power() + added <= budget.guarded_cap + 1e-9
    assert level.index < len(chip44.vf_table) - 1


def test_pid_start_level_floor_when_no_headroom(chip44):
    manager, _, _ = make(chip44, "pid", 1.0)
    occupy(chip44, 16)
    level = manager.start_level_for(chip44.core(0), activity=1.0)
    assert level.index == 0


def test_pid_start_level_max_on_empty_chip(chip44):
    manager, _, _ = make(chip44, "pid", 20.0)
    level = manager.start_level_for(chip44.core(0), activity=1.0)
    assert level.index == len(chip44.vf_table) - 1


def test_unbound_actuator_raises(chip44):
    meter = PowerMeter(chip44)
    manager = PIDPowerManager(chip44, meter, PowerBudget(1.0))
    occupy(chip44, 16)
    with pytest.raises(RuntimeError, match="no level actuator"):
        manager.tick(0.0, 100.0)


# ----------------------------------------------------------------------
# TSP (Thermal Safe Power)
# ----------------------------------------------------------------------
def test_tsp_cap_is_guarded_tdp_when_idle(chip44):
    manager, _, budget = make(chip44, "tsp", 20.0)
    assert manager.current_cap() == pytest.approx(budget.guarded_cap)


def test_tsp_cap_formula_matches_helper(chip44):
    from repro.platform.thermal import thermal_safe_power

    manager, _, _ = make(chip44, "tsp", 1000.0)  # TDP never binds
    occupy(chip44, 4)
    expected = 4 * thermal_safe_power(chip44, manager.thermal_params, 4)
    assert manager.current_cap() == pytest.approx(expected)


def test_tsp_cap_never_exceeds_tdp(chip44):
    manager, _, budget = make(chip44, "tsp", 20.0)
    occupy(chip44, 4)
    assert manager.current_cap() <= budget.guarded_cap + 1e-9


def test_tsp_throttles_towards_thermal_cap(chip44):
    """With a roomy TDP, the thermal term is what limits power."""
    from repro.platform.thermal import ThermalParameters
    from repro.power.manager import TSPPowerManager

    meter = PowerMeter(chip44)
    budget = PowerBudget(1000.0, guard_fraction=0.0)
    tight = ThermalParameters(r_self_c_per_w=30.0, limit_c=70.0)
    manager = TSPPowerManager(chip44, meter, budget, thermal_params=tight)
    manager.bind_actuator(direct_actuator)
    occupy(chip44, 16)  # ~49 W at nominal
    for _ in range(30):
        manager.tick(0.0, 100.0)
    assert meter.chip_power() <= manager.current_cap() * 1.1


def test_tsp_in_factory(chip44):
    from repro.power.manager import TSPPowerManager

    manager, _, _ = make(chip44, "tsp", 20.0)
    assert isinstance(manager, TSPPowerManager)
    assert manager.name == "tsp"


def test_tsp_system_run():
    from repro.core.system import SystemConfig, run_system

    result = run_system(
        SystemConfig(power_policy="tsp", horizon_us=5_000.0, seed=3)
    )
    assert result.power_policy_name == "tsp"
    assert result.metrics.audit.violation_rate == 0.0

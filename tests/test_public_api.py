"""Public-API surface checks.

A downstream user's imports should be stable: everything advertised in
``__all__`` must exist, the top-level package must expose the documented
entry points, and the packaged doctest must hold.
"""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.aging",
    "repro.campaign",
    "repro.core",
    "repro.experiments",
    "repro.mapping",
    "repro.metrics",
    "repro.noc",
    "repro.obs",
    "repro.platform",
    "repro.power",
    "repro.sim",
    "repro.testing",
    "repro.workload",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} has no __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_top_level_entry_points():
    assert callable(repro.run_system)
    assert repro.SystemConfig is not None
    assert repro.__version__


def test_package_doctest():
    from repro import SystemConfig, run_system

    result = run_system(SystemConfig(horizon_us=2_000.0, seed=7))
    assert result.summary()["tests_completed"] >= 0


def test_submodules_not_exported_accidentally():
    """__all__ names are classes/functions/constants, not module objects."""
    import types

    for symbol in repro.__all__:
        value = getattr(repro, symbol)
        assert not isinstance(value, types.ModuleType), symbol


def test_cli_module_importable():
    from repro.cli import build_parser

    parser = build_parser()
    assert parser.prog == "repro"

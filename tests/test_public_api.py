"""Public-API surface checks.

A downstream user's imports should be stable: everything advertised in
``__all__`` must exist, the top-level package must expose the documented
entry points, and the packaged doctest must hold.

``PACKAGES`` below is also the source of truth for the generated API
reference: ``benchmarks/gen_api_docs.py`` loads this module by file path
and emits one ``docs/api/*.md`` page per listed package, and the drift
test at the bottom fails when those pages lag the code.
"""

import importlib
import importlib.util
import os

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.aging",
    "repro.batch",
    "repro.cache",
    "repro.campaign",
    "repro.core",
    "repro.dse",
    "repro.experiments",
    "repro.mapping",
    "repro.metrics",
    "repro.noc",
    "repro.obs",
    "repro.platform",
    "repro.power",
    "repro.serve",
    "repro.sim",
    "repro.telemetry",
    "repro.testing",
    "repro.verify",
    "repro.workload",
]

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_script(name):
    """Import a benchmarks/ script by path (they are not a package)."""
    path = os.path.join(REPO_ROOT, "benchmarks", name + ".py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", PACKAGES)
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} has no __all__"
    for symbol in module.__all__:
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_top_level_entry_points():
    assert callable(repro.run_system)
    assert repro.SystemConfig is not None
    assert repro.__version__


def test_package_doctest():
    from repro import SystemConfig, run_system

    result = run_system(SystemConfig(horizon_us=2_000.0, seed=7))
    assert result.summary()["tests_completed"] >= 0


def test_submodules_not_exported_accidentally():
    """__all__ names are classes/functions/constants, not module objects."""
    import types

    for symbol in repro.__all__:
        value = getattr(repro, symbol)
        assert not isinstance(value, types.ModuleType), symbol


def test_cli_module_importable():
    from repro.cli import build_parser

    parser = build_parser()
    assert parser.prog == "repro"


# ----------------------------------------------------------------------
# Documentation gates (same checks CI's docs job runs)
# ----------------------------------------------------------------------
def test_gen_api_docs_uses_this_package_list():
    gen = _load_script("gen_api_docs")
    assert gen.load_packages() == PACKAGES


def test_api_reference_not_stale():
    """docs/api/ must match what gen_api_docs.py would emit today."""
    gen = _load_script("gen_api_docs")
    problems = gen.check_pages(gen.render_all())
    assert problems == [], (
        "regenerate with `PYTHONPATH=src python benchmarks/gen_api_docs.py`"
    )


def test_docstring_lint_clean():
    """Every public name in cache/campaign/obs carries a docstring."""
    check = _load_script("check_docs")
    assert check.check_docstrings() == []


def test_docs_internal_links_resolve():
    check = _load_script("check_docs")
    assert check.check_links() == []

"""Tests for process variation and lifetime-reliability analysis."""

import math
import random

import pytest

from repro.aging.lifetime import (
    LifetimeAnalyzer,
    LifetimeParameters,
    LifetimeReport,
)
from repro.platform.chip import Chip
from repro.platform.variation import VariationModel, VariationParameters


# ----------------------------------------------------------------------
# VariationModel
# ----------------------------------------------------------------------
def test_apply_sets_factors_within_clip(chip88):
    params = VariationParameters()
    VariationModel(params, random.Random(1)).apply(chip88)
    for core in chip88:
        assert params.min_factor <= core.speed_factor <= params.max_factor
        assert core.leak_factor >= 0.5


def test_variation_is_deterministic_per_seed(chip88):
    VariationModel(rng=random.Random(7)).apply(chip88)
    first = [c.speed_factor for c in chip88]
    chip2 = Chip.build(8, 8)
    VariationModel(rng=random.Random(7)).apply(chip2)
    assert [c.speed_factor for c in chip2] == first


def test_variation_differs_across_seeds(chip88):
    VariationModel(rng=random.Random(1)).apply(chip88)
    first = [c.speed_factor for c in chip88]
    chip2 = Chip.build(8, 8)
    VariationModel(rng=random.Random(2)).apply(chip2)
    assert [c.speed_factor for c in chip2] != first


def test_zero_variation_gives_uniform_chip(chip88):
    params = VariationParameters(sigma_systematic=0.0, sigma_random=0.0)
    VariationModel(params, random.Random(1)).apply(chip88)
    assert all(c.speed_factor == pytest.approx(1.0) for c in chip88)
    assert all(c.leak_factor == pytest.approx(1.0) for c in chip88)
    assert VariationModel.spread(chip88) == pytest.approx(1.0)


def test_fast_cores_leak_more(chip88):
    VariationModel(rng=random.Random(3)).apply(chip88)
    fastest = max(chip88, key=lambda c: c.speed_factor)
    slowest = min(chip88, key=lambda c: c.speed_factor)
    assert fastest.leak_factor > slowest.leak_factor


def test_systematic_gradient_visible(chip88):
    """With only the systematic component, factors vary smoothly."""
    params = VariationParameters(sigma_systematic=0.05, sigma_random=0.0)
    VariationModel(params, random.Random(5)).apply(chip88)
    spread = VariationModel.spread(chip88)
    assert spread > 1.02  # gradient produced a real spread


def test_variation_parameter_validation():
    with pytest.raises(ValueError):
        VariationParameters(sigma_random=-0.1)
    with pytest.raises(ValueError):
        VariationParameters(min_factor=1.1)


def test_variation_affects_task_duration(chip88):
    core = chip88.core(0)
    core.speed_factor = 0.5
    level = chip88.vf_table.max_level
    assert core.speed_at(level) == pytest.approx(0.5 * level.speed)


# ----------------------------------------------------------------------
# LifetimeAnalyzer
# ----------------------------------------------------------------------
@pytest.fixture
def analyzer():
    return LifetimeAnalyzer(LifetimeParameters(eta_stress=100.0, beta=2.0))


def test_reliability_fresh_core(analyzer):
    assert analyzer.reliability(0.0) == 1.0


def test_reliability_weibull_form(analyzer):
    assert analyzer.reliability(100.0) == pytest.approx(math.exp(-1.0))
    assert analyzer.reliability(50.0) == pytest.approx(math.exp(-0.25))


def test_reliability_monotone_decreasing(analyzer):
    values = [analyzer.reliability(s) for s in (0.0, 10.0, 50.0, 200.0)]
    assert values == sorted(values, reverse=True)


def test_reliability_rejects_negative(analyzer):
    with pytest.raises(ValueError):
        analyzer.reliability(-1.0)


def test_expected_failure_time_scales_inverse_rate(analyzer):
    slow = analyzer.expected_failure_time_us(10.0, horizon_us=1000.0)
    fast = analyzer.expected_failure_time_us(20.0, horizon_us=1000.0)
    assert slow == pytest.approx(2.0 * fast)


def test_expected_failure_time_infinite_for_unstressed(analyzer):
    assert math.isinf(analyzer.expected_failure_time_us(0.0, 1000.0))


def test_mean_life_stress_gamma(analyzer):
    expected = 100.0 * math.gamma(1.5)
    assert analyzer.params.mean_life_stress == pytest.approx(expected)


def test_analyze_report_fields(analyzer):
    report = analyzer.analyze({0: 10.0, 1: 20.0, 2: 30.0}, horizon_us=1000.0)
    assert isinstance(report, LifetimeReport)
    assert report.stress_mean == pytest.approx(20.0)
    assert report.stress_max == pytest.approx(30.0)
    assert report.wear_imbalance == pytest.approx(1.5)
    assert report.min_reliability == analyzer.reliability(30.0)
    # First failure comes from the most-stressed core.
    assert report.expected_lifetime_us == pytest.approx(
        analyzer.expected_failure_time_us(30.0, 1000.0)
    )


def test_analyze_kth_failure_criterion():
    analyzer = LifetimeAnalyzer(
        LifetimeParameters(eta_stress=100.0, beta=2.0, failure_core_count=2)
    )
    report = analyzer.analyze({0: 10.0, 1: 20.0, 2: 40.0}, horizon_us=1000.0)
    # Chip dies at the SECOND failure: the 20-stress core.
    assert report.expected_lifetime_us == pytest.approx(
        analyzer.expected_failure_time_us(20.0, 1000.0)
    )


def test_analyze_rejects_empty(analyzer):
    with pytest.raises(ValueError):
        analyzer.analyze({}, 1000.0)


def test_analyze_chip_reads_age_stress(analyzer, chip44):
    chip44.core(0).age_stress = 50.0
    report = analyzer.analyze_chip(chip44, horizon_us=1000.0)
    assert report.stress_max == pytest.approx(50.0)


def test_wear_levelling_extends_lifetime(analyzer):
    """Same total stress, levelled vs. concentrated: levelled lives longer."""
    concentrated = analyzer.analyze({0: 90.0, 1: 5.0, 2: 5.0}, 1000.0)
    levelled = analyzer.analyze({0: 34.0, 1: 33.0, 2: 33.0}, 1000.0)
    gain = LifetimeAnalyzer.lifetime_gain_pct(concentrated, levelled)
    assert gain > 100.0  # max stress dropped ~2.6x


def test_lifetime_gain_zero_for_infinite_baseline(analyzer):
    baseline = analyzer.analyze({0: 0.0}, 1000.0)
    improved = analyzer.analyze({0: 0.0}, 1000.0)
    assert LifetimeAnalyzer.lifetime_gain_pct(baseline, improved) == 0.0


def test_lifetime_hours_conversion(analyzer):
    report = analyzer.analyze({0: 10.0}, horizon_us=1000.0)
    assert report.expected_lifetime_hours == pytest.approx(
        report.expected_lifetime_us / 3.6e9
    )


def test_lifetime_parameter_validation():
    with pytest.raises(ValueError):
        LifetimeParameters(eta_stress=0.0)
    with pytest.raises(ValueError):
        LifetimeParameters(beta=0.0)
    with pytest.raises(ValueError):
        LifetimeParameters(failure_core_count=0)

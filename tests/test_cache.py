"""Tests for the content-addressed run cache (``repro.cache``).

Contract-level properties pinned here:

* **identity** — a cache hit is byte-identical to a recompute: summary
  digests match across cache-off, cold-cache and warm-cache runs, for
  ``run_many`` (serial and pooled) and for campaigns (including a warm
  re-run grid served without executing a single point);
* **integrity** — a corrupt blob (bit rot, truncation, unpicklable
  payload) is quarantined and transparently recomputed, never served;
* **durability** — the index survives torn final lines, self-heals
  mid-file corruption, and is never torn by pooled sweeps (the
  supervisor is the only index writer);
* **boundedness** — a size cap evicts in LRU order, refreshed by hits.
"""

from __future__ import annotations

import dataclasses
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    CachePlan,
    CacheStats,
    ContentStore,
    RunCache,
    active_cache,
    default_salt,
    run_key,
    set_default_cache,
    store_result_blob,
    write_blob,
)
from repro.cache.store import INDEX_FILE, QUARANTINE_DIR, blob_path
from repro.campaign import CampaignSpec, run_campaign
from repro.cli import main
from repro.core.system import SystemConfig, run_system
from repro.experiments.parallel import run_many
from repro.obs import Journal, configure
from repro.obs.provenance import rows_digest

#: Small fast config: one run is ~50 ms.
BASE = SystemConfig(width=4, height=4, horizon_us=2000.0, seed=5)


def summaries_digest(results) -> str:
    return rows_digest([r.summary() for r in results])


@pytest.fixture
def cache(tmp_path):
    return RunCache(cache_dir=str(tmp_path / "cache"))


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def test_key_is_stable_and_config_sensitive():
    salt = default_salt()
    assert run_key(BASE, salt) == run_key(BASE, salt)
    other = dataclasses.replace(BASE, seed=6)
    assert run_key(other, salt) != run_key(BASE, salt)


def test_key_is_salt_sensitive():
    assert run_key(BASE, "v1/s1") != run_key(BASE, "v2/s1")
    assert default_salt("e2") != default_salt()


# ----------------------------------------------------------------------
# ContentStore
# ----------------------------------------------------------------------
def test_store_round_trip_and_persistence(tmp_path):
    root = str(tmp_path)
    store = ContentStore(root)
    store.put("k1", b"hello")
    assert store.get("k1") == ("hit", b"hello")
    assert store.get("nope") == ("miss", None)
    # a fresh instance replays the index
    again = ContentStore(root)
    assert again.get("k1") == ("hit", b"hello")
    assert len(again) == 1 and again.total_bytes() == 5


def test_store_deduplicates_identical_blobs(tmp_path):
    store = ContentStore(str(tmp_path))
    d1, _ = store.put("k1", b"same-bytes")
    d2, _ = store.put("k2", b"same-bytes")
    assert d1 == d2
    # deleting one key keeps the shared blob alive for the other
    store.delete("k1")
    assert store.get("k2") == ("hit", b"same-bytes")
    store.delete("k2")
    assert not os.path.exists(blob_path(str(tmp_path), d1))


def test_corrupt_blob_is_quarantined_and_missed(tmp_path):
    root = str(tmp_path)
    store = ContentStore(root)
    digest, _ = store.put("k1", b"payload")
    with open(blob_path(root, digest), "r+b") as handle:
        handle.write(b"XX")
    status, data = store.get("k1")
    assert status == "corrupt" and data is None
    assert "k1" not in store
    assert os.path.exists(os.path.join(root, QUARANTINE_DIR, digest))
    assert store.counters["corrupt"] == 1
    # the deletion is durable: a reload agrees
    assert ContentStore(root).get("k1") == ("miss", None)


def test_vanished_blob_counts_as_corrupt(tmp_path):
    root = str(tmp_path)
    store = ContentStore(root)
    digest, _ = store.put("k1", b"payload")
    os.remove(blob_path(root, digest))
    assert store.get("k1") == ("corrupt", None)


def test_verify_quarantines_and_reports(tmp_path):
    root = str(tmp_path)
    store = ContentStore(root)
    d1, _ = store.put("good", b"aaa")
    d2, _ = store.put("bad", b"bbb")
    with open(blob_path(root, d2), "wb") as handle:
        handle.write(b"tampered")
    report = store.verify()
    assert report["checked"] == 2
    assert report["ok"] == 1
    assert report["corrupt"] == ["bad"]
    assert store.get("good")[0] == "hit"


def test_lru_eviction_order_under_tiny_cap(tmp_path):
    # Cap fits two 3-byte blobs; entries are evicted oldest-use first.
    store = ContentStore(str(tmp_path), max_bytes=6)
    store.put("a", b"aa1")
    store.put("b", b"bb1")
    store.get("a")  # refresh a: b is now the LRU entry
    evicted = store.put("c", b"cc1")[1]
    assert evicted == ["b"]
    assert store.keys() == ["a", "c"]
    assert store.counters["evictions"] == 1
    # the sole remaining entry is never evicted on behalf of itself
    solo = ContentStore(str(tmp_path / "solo"), max_bytes=1)
    solo.put("big", b"way-too-big")
    assert solo.keys() == ["big"]


def test_eviction_order_survives_reload(tmp_path):
    root = str(tmp_path)
    store = ContentStore(root, max_bytes=100)
    store.put("a", b"a" * 30)
    store.put("b", b"b" * 30)
    store.get("a")
    reloaded = ContentStore(root, max_bytes=100)
    evicted = reloaded.put("c", b"c" * 60)[1]
    assert evicted == ["b"]


def test_torn_final_index_line_is_tolerated(tmp_path):
    root = str(tmp_path)
    store = ContentStore(root)
    store.put("k1", b"data")
    store.close()
    with open(os.path.join(root, INDEX_FILE), "a", encoding="utf-8") as f:
        f.write('{"op": "put", "key": "torn')
    again = ContentStore(root)
    assert again.get("k1") == ("hit", b"data")


def test_mid_file_index_corruption_self_heals(tmp_path):
    root = str(tmp_path)
    store = ContentStore(root)
    store.put("k1", b"one")
    store.put("k2", b"two")
    store.close()
    index = os.path.join(root, INDEX_FILE)
    lines = open(index, encoding="utf-8").read().splitlines()
    lines.insert(1, "GARBAGE-NOT-JSON")
    with open(index, "w", encoding="utf-8") as f:
        f.write("\n".join(lines) + "\n")
    healed = ContentStore(root)
    assert healed.get("k1")[0] == "hit"
    assert healed.get("k2")[0] == "hit"
    # the log was compacted: every surviving line parses
    for line in open(index, encoding="utf-8").read().splitlines():
        json.loads(line)


def test_gc_collects_orphans_and_compacts(tmp_path):
    root = str(tmp_path)
    store = ContentStore(root)
    store.put("k1", b"keep")
    write_blob(root, b"orphan-blob")  # deposited but never adopted
    outcome = store.gc()
    assert outcome["orphan_blobs_removed"] == 1
    assert outcome["entries"] == 1
    assert store.get("k1") == ("hit", b"keep")


def test_adopt_requires_existing_blob(tmp_path):
    store = ContentStore(str(tmp_path))
    with pytest.raises(FileNotFoundError):
        store.adopt("k1", "0" * 64, 10)
    digest, size = write_blob(str(tmp_path), b"worker-made")
    store.adopt("k1", digest, size)
    assert store.get("k1") == ("hit", b"worker-made")


# ----------------------------------------------------------------------
# RunCache
# ----------------------------------------------------------------------
def test_run_cache_round_trip(cache):
    result, hit = cache.get_or_run(BASE)
    assert not hit
    again, hit2 = cache.get_or_run(BASE)
    assert hit2
    assert summaries_digest([result]) == summaries_digest([again])
    assert cache.stats.hits == 1 and cache.stats.misses == 1
    assert cache.stats.hit_rate() == 0.5


def test_run_cache_unpicklable_blob_is_corrupt(cache):
    key = cache.put_result(BASE, run_system(BASE))
    entry = cache.store._entries[key]
    # digest-valid bytes that are not a pickle
    bogus = b"not a pickle at all"
    digest, size = write_blob(cache.cache_dir, bogus)
    cache.store.adopt(key, digest, size)
    assert cache.get_result(BASE) is None
    assert cache.stats.corrupt == 1
    del entry


def test_run_cache_emits_journal_events(tmp_path):
    journal = Journal()
    cache = RunCache(cache_dir=str(tmp_path), journal=journal)
    cache.get_or_run(BASE)
    cache.get_or_run(BASE)
    cache.note_bypass(2, reason="test")
    counts = journal.counts()
    assert counts["cache.miss"] == 1
    assert counts["cache.put"] == 1
    assert counts["cache.hit"] == 1
    assert counts["cache.bypass"] == 1


def test_cache_stats_empty_hit_rate():
    assert CacheStats().hit_rate() is None


def test_default_cache_install_and_reset(cache):
    assert active_cache() is None
    set_default_cache(cache)
    try:
        assert active_cache() is cache
        run_many([BASE])
        assert cache.stats.misses == 1
        run_many([BASE])
        assert cache.stats.hits == 1
    finally:
        set_default_cache(None)
    assert active_cache() is None


# ----------------------------------------------------------------------
# run_many threading
# ----------------------------------------------------------------------
def sweep_configs(n=4):
    return [
        dataclasses.replace(BASE, tdp_w=30.0 + 10.0 * i) for i in range(n)
    ]


def test_run_many_cache_identity_serial(cache):
    configs = sweep_configs()
    plain = run_many(configs)
    cold = run_many(configs, cache=cache)
    warm = run_many(configs, cache=cache)
    assert (
        summaries_digest(plain)
        == summaries_digest(cold)
        == summaries_digest(warm)
    )
    assert cache.stats.misses == 4 and cache.stats.hits == 4


def test_run_many_cache_identity_pooled_no_torn_index(tmp_path):
    configs = sweep_configs(6)
    root = str(tmp_path / "cache")
    cold = run_many(configs, 2, cache=RunCache(cache_dir=root))
    # every index line written during the pooled sweep parses cleanly
    index = os.path.join(root, INDEX_FILE)
    lines = [
        line
        for line in open(index, encoding="utf-8").read().splitlines()
        if line.strip()
    ]
    assert len(lines) >= 6
    for line in lines:
        assert json.loads(line)["op"] in ("put", "touch", "del")
    warm_cache = RunCache(cache_dir=root)
    warm = run_many(configs, 2, cache=warm_cache)
    assert warm_cache.stats.hits == 6 and warm_cache.stats.misses == 0
    assert summaries_digest(cold) == summaries_digest(warm)


def test_run_many_partial_warm(cache):
    configs = sweep_configs(4)
    run_many(configs[:2], cache=cache)
    cache.stats = CacheStats()
    results = run_many(configs, cache=cache)
    assert cache.stats.hits == 2 and cache.stats.misses == 2
    assert summaries_digest(results) == summaries_digest(run_many(configs))


def test_run_many_bypasses_under_observability(cache):
    configure(journal=Journal())
    try:
        results = run_many([BASE], cache=cache)
    finally:
        configure()
    assert cache.stats.bypasses == 1
    assert cache.stats.hits == 0 and cache.stats.misses == 0
    assert len(cache.store) == 0
    assert summaries_digest(results) == summaries_digest([run_system(BASE)])


@settings(max_examples=6, deadline=None)
@given(
    tdp_w=st.floats(min_value=15.0, max_value=120.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    rate=st.floats(min_value=1.0, max_value=20.0, allow_nan=False),
)
def test_property_cache_on_equals_cache_off(tmp_path_factory, tdp_w, seed, rate):
    """Cache-on and cache-off ``run_many`` agree for arbitrary configs."""
    config = dataclasses.replace(
        BASE,
        horizon_us=1200.0,
        tdp_w=tdp_w,
        seed=seed,
        arrival_rate_per_ms=rate,
    )
    cache = RunCache(
        cache_dir=str(tmp_path_factory.mktemp("prop-cache"))
    )
    off = run_many([config])
    cold = run_many([config], cache=cache)
    warm = run_many([config], cache=cache)
    assert (
        summaries_digest(off)
        == summaries_digest(cold)
        == summaries_digest(warm)
    )
    assert cache.stats.hits == 1 and cache.stats.misses == 1


# ----------------------------------------------------------------------
# Campaign threading
# ----------------------------------------------------------------------
CAMPAIGN_BASE = {
    "width": 4,
    "height": 4,
    "horizon_us": 2000.0,
    "arrival_rate_per_ms": 8.0,
    "fault_hazard_per_us": 2e-4,
}


def small_spec() -> CampaignSpec:
    return CampaignSpec.from_dict(
        {
            "name": "cache-test",
            "base": CAMPAIGN_BASE,
            "grid": {"test_policy": ["power-aware", "none"]},
            "seeds": {"start": 1, "count": 2},
        }
    )


def _exploding_worker(payload):
    raise AssertionError("cache should have served every point")


def test_campaign_warm_grid_served_without_running(tmp_path):
    spec = small_spec()
    cache_dir = str(tmp_path / "cache")
    cold = run_campaign(
        str(tmp_path / "c1"), spec=spec, cache=RunCache(cache_dir=cache_dir)
    )
    # identical grid, new campaign dir, a worker that would fail loudly:
    # every point must be served from the cache.
    warm_cache = RunCache(cache_dir=cache_dir)
    warm = run_campaign(
        str(tmp_path / "c2"),
        spec=spec,
        cache=warm_cache,
        worker=_exploding_worker,
    )
    assert warm.aggregate == cold.aggregate
    assert warm_cache.stats.hits == 4 and warm_cache.stats.misses == 0
    # and both equal an uncached cold campaign
    plain = run_campaign(str(tmp_path / "c3"), spec=spec)
    assert plain.aggregate == cold.aggregate


def test_campaign_overlapping_grid_partially_served(tmp_path):
    spec = small_spec()
    cache_dir = str(tmp_path / "cache")
    run_campaign(
        str(tmp_path / "c1"), spec=spec, cache=RunCache(cache_dir=cache_dir)
    )
    bigger = CampaignSpec.from_dict(
        {
            "name": "cache-test-wide",
            "base": CAMPAIGN_BASE,
            "grid": {"test_policy": ["power-aware", "none", "unaware"]},
            "seeds": {"start": 1, "count": 2},
        }
    )
    overlap_cache = RunCache(cache_dir=cache_dir)
    report = run_campaign(
        str(tmp_path / "c2"), spec=bigger, cache=overlap_cache
    )
    # 4 of 6 points overlap the first grid
    assert overlap_cache.stats.hits == 4
    assert overlap_cache.stats.misses == 2
    plain = run_campaign(str(tmp_path / "c3"), spec=bigger)
    assert report.aggregate == plain.aggregate


def test_campaign_pooled_cache_index_owned_by_supervisor(tmp_path):
    spec = small_spec()
    cache_dir = str(tmp_path / "cache")
    run_campaign(
        str(tmp_path / "c1"),
        spec=spec,
        jobs=2,
        cache=RunCache(cache_dir=cache_dir),
    )
    store = ContentStore(cache_dir)
    assert len(store) == 4
    for line in open(
        os.path.join(cache_dir, INDEX_FILE), encoding="utf-8"
    ).read().splitlines():
        json.loads(line)


def test_worker_blob_deposit_matches_supervisor_put(tmp_path):
    """CachePlan deposits index identically to a supervisor-side put."""
    plan = CachePlan(cache_dir=str(tmp_path), salt=default_salt())
    result = run_system(BASE)
    entry = store_result_blob(plan, BASE, result)
    cache = RunCache(cache_dir=str(tmp_path))
    cache.adopt(entry["key"], str(entry["blob"]), int(entry["size"]))
    served = cache.get_result(BASE)
    assert served is not None
    assert summaries_digest([served]) == summaries_digest([result])


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_sweep_warm_and_cache_commands(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    args = [
        "sweep", "tdp_w", "40,60", "--horizon-ms", "2",
        "--cache-dir", cache_dir,
    ]
    assert main(args) == 0
    cold_out = capsys.readouterr().out
    assert "2 miss(es)" in cold_out
    assert main(args) == 0
    warm_out = capsys.readouterr().out
    assert "2 hit(s)" in warm_out and "100% hit rate" in warm_out
    # the tables themselves are identical
    table = lambda text: text.split("cache:")[0]
    assert table(cold_out) == table(warm_out)

    assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
    assert "entries" in capsys.readouterr().out
    assert main(["cache", "verify", "--cache-dir", cache_dir]) == 0
    assert "2 ok" in capsys.readouterr().out
    assert main(["cache", "gc", "--cache-dir", cache_dir]) == 0
    capsys.readouterr()
    assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
    assert "cleared 2" in capsys.readouterr().out


def test_cli_cache_verify_flags_corruption(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    cache = RunCache(cache_dir=cache_dir)
    key = cache.put_result(BASE, run_system(BASE))
    blob = cache.store._entries[key].blob
    with open(blob_path(cache_dir, blob), "r+b") as handle:
        handle.write(b"XX")
    cache.store.close()
    assert main(["cache", "verify", "--cache-dir", cache_dir]) == 1
    assert "1 corrupt" in capsys.readouterr().out


def test_cli_run_journal_bypasses_cache(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    journal_path = str(tmp_path / "run.jsonl")
    assert main([
        "run", "--horizon-ms", "2", "--cache-dir", cache_dir,
        "--journal", journal_path,
    ]) == 0
    out = capsys.readouterr().out
    assert "journal written" in out
    assert "cache:" not in out  # bypassed: no hit/miss line
    assert not os.path.exists(os.path.join(cache_dir, INDEX_FILE))


def test_cli_cache_and_no_cache_conflict(capsys):
    with pytest.raises(SystemExit):
        main(["sweep", "tdp_w", "40", "--cache", "--no-cache"])


def test_cli_missing_cache_dir_is_friendly(tmp_path, capsys):
    missing = str(tmp_path / "nope")
    assert main(["cache", "verify", "--cache-dir", missing]) == 2
    assert "no cache at" in capsys.readouterr().err

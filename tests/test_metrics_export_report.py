"""Tests for metrics/export.py (CSV/JSON dumps) and metrics/report.py
(ASCII tables, series rendering, sparklines)."""

import csv
import io

import pytest

from repro.metrics.export import (
    rows_to_csv,
    series_to_csv,
    summary_to_json,
    trace_to_csv,
    write_text,
)
from repro.metrics.report import format_series, format_table, sparkline
from repro.sim.trace import Trace


@pytest.fixture
def trace():
    t = Trace()
    t.record("power.total", 0.0, 10.0)
    t.record("power.total", 5.0, 20.0)
    t.record("cores.busy", 2.0, 3.0)
    return t


def _parse(text):
    return list(csv.reader(io.StringIO(text)))


# ----------------------------------------------------------------------
# export.py
# ----------------------------------------------------------------------
def test_trace_to_csv_union_grid(trace):
    rows = _parse(trace_to_csv(trace))
    assert rows[0] == ["time_us", "cores.busy", "power.total"]
    # Union of record times: 0, 2, 5; step-function values at each.
    assert [r[0] for r in rows[1:]] == ["0.0", "2.0", "5.0"]
    assert rows[1][1:] == ["0.0", "10.0"]   # cores.busy defaults to 0 before 2.0
    assert rows[2][1:] == ["3.0", "10.0"]
    assert rows[3][1:] == ["3.0", "20.0"]


def test_trace_to_csv_selected_names(trace):
    rows = _parse(trace_to_csv(trace, names=["power.total"]))
    assert rows[0] == ["time_us", "power.total"]
    assert len(rows) == 3  # only power.total's record times


def test_trace_to_csv_regular_grid(trace):
    rows = _parse(trace_to_csv(trace, grid_step=2.5, t_end=5.0))
    assert [r[0] for r in rows[1:]] == ["0.0", "2.5", "5.0"]


def test_trace_to_csv_errors(trace):
    with pytest.raises(KeyError):
        trace_to_csv(trace, names=["missing"])
    with pytest.raises(ValueError):
        trace_to_csv(trace, grid_step=1.0)  # t_end required
    with pytest.raises(ValueError):
        trace_to_csv(trace, grid_step=-1.0, t_end=5.0)


def test_trace_to_csv_empty_trace():
    rows = _parse(trace_to_csv(Trace()))
    assert rows == [["time_us"]]


def test_series_to_csv_round_trip():
    text = series_to_csv({"x": [1.0, 2.0], "y": [3.0, 4.0]})
    rows = _parse(text)
    assert rows[0] == ["x", "y"]
    assert rows[1:] == [["1.0", "3.0"], ["2.0", "4.0"]]


def test_series_to_csv_errors():
    with pytest.raises(ValueError):
        series_to_csv({})
    with pytest.raises(ValueError):
        series_to_csv({"x": [1.0], "y": [1.0, 2.0]})


def test_rows_to_csv():
    text = rows_to_csv(["a", "b"], [[1, "x"], [2, "y"]])
    assert _parse(text) == [["a", "b"], ["1", "x"], ["2", "y"]]


def test_rows_to_csv_errors():
    with pytest.raises(ValueError):
        rows_to_csv([], [])
    with pytest.raises(ValueError):
        rows_to_csv(["a", "b"], [[1]])


def test_summary_to_json_sorted_keys():
    text = summary_to_json({"b": 2.0, "a": 1.0})
    assert text.index('"a"') < text.index('"b"')


def test_write_text(tmp_path):
    path = tmp_path / "out.csv"
    write_text(str(path), "a,b\n1,2\n")
    assert path.read_text() == "a,b\n1,2\n"


# ----------------------------------------------------------------------
# report.py
# ----------------------------------------------------------------------
def test_format_table_alignment_and_precision():
    text = format_table(
        ["name", "value"], [["x", 1.23456], ["long-name", 2]], precision=2,
        title="caps",
    )
    lines = text.splitlines()
    assert lines[0] == "caps"
    assert "name" in lines[1] and "value" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "1.23" in text and "1.2345" not in text
    assert "2" in lines[-1]  # ints render without decimals


def test_format_table_bools_render_as_words():
    text = format_table(["flag"], [[True], [False]])
    assert "True" in text and "False" in text


def test_format_table_errors():
    with pytest.raises(ValueError):
        format_table([], [])
    with pytest.raises(ValueError):
        format_table(["a"], [[1, 2]])


def test_format_series_downsamples():
    xs = [float(i) for i in range(100)]
    ys = [float(i) * 2 for i in range(100)]
    text = format_series("s", xs, ys, max_points=10)
    # Header + separator + title + at most 10 data rows.
    assert len(text.splitlines()) <= 13
    assert text.splitlines()[0] == "s"


def test_format_series_rejects_mismatched_lengths():
    with pytest.raises(ValueError):
        format_series("s", [1.0], [1.0, 2.0])


def test_sparkline_shapes():
    assert sparkline([]) == ""
    flat = sparkline([1.0, 1.0, 1.0])
    assert flat == flat[0] * 3
    line = sparkline([0.0, 1.0, 2.0, 3.0])
    assert len(line) == 4
    assert line[0] != line[-1]


def test_sparkline_downsamples_to_width():
    assert len(sparkline(list(range(1000)), width=40)) == 40

"""Tests for the power budget, audit, and the PID controller."""

import pytest

from repro.power.budget import BudgetAudit, PowerBudget
from repro.power.pid import PIDController, PIDGains


# ----------------------------------------------------------------------
# PowerBudget
# ----------------------------------------------------------------------
def test_guarded_cap_below_cap():
    b = PowerBudget(100.0, guard_fraction=0.05)
    assert b.cap == 100.0
    assert b.guarded_cap == pytest.approx(95.0)


def test_headroom():
    b = PowerBudget(100.0, guard_fraction=0.0)
    assert b.headroom(60.0) == pytest.approx(40.0)
    assert b.headroom(120.0) == pytest.approx(-20.0)


def test_violated_uses_hard_cap():
    b = PowerBudget(100.0, guard_fraction=0.1)
    assert not b.violated(95.0)   # above guarded cap but under hard cap
    assert b.violated(100.1)


def test_budget_validation():
    with pytest.raises(ValueError):
        PowerBudget(0.0)
    with pytest.raises(ValueError):
        PowerBudget(10.0, guard_fraction=1.0)


# ----------------------------------------------------------------------
# BudgetAudit
# ----------------------------------------------------------------------
def test_audit_counts_violations():
    audit = BudgetAudit(PowerBudget(50.0))
    audit.observe(0.0, 40.0)
    audit.observe(1.0, 55.0)
    audit.observe(2.0, 60.0)
    assert audit.samples == 3
    assert audit.violations == 2
    assert audit.violation_rate == pytest.approx(2 / 3)
    assert audit.worst_overshoot_w == pytest.approx(10.0)
    assert audit.violation_times() == [1.0, 2.0]


def test_audit_empty():
    audit = BudgetAudit(PowerBudget(50.0))
    assert audit.violation_rate == 0.0


# ----------------------------------------------------------------------
# PIDController
# ----------------------------------------------------------------------
def test_pid_signal_sign_tracks_error():
    pid = PIDController(set_point=50.0)
    assert pid.update(measured=30.0, dt=1.0) > 0.0   # headroom -> speed up
    pid.reset()
    assert pid.update(measured=70.0, dt=1.0) < 0.0   # over budget -> slow


def test_pid_proportional_only():
    pid = PIDController(50.0, PIDGains(kp=2.0, ki=0.0, kd=0.0))
    assert pid.update(40.0, dt=1.0) == pytest.approx(20.0)


def test_pid_integral_accumulates():
    pid = PIDController(50.0, PIDGains(kp=0.0, ki=1.0, kd=0.0))
    assert pid.update(40.0, dt=1.0) == pytest.approx(10.0)
    assert pid.update(40.0, dt=1.0) == pytest.approx(20.0)


def test_pid_integral_anti_windup_clamps():
    pid = PIDController(50.0, PIDGains(kp=0.0, ki=1.0, kd=0.0), integral_limit=15.0)
    for _ in range(10):
        signal = pid.update(0.0, dt=1.0)
    assert signal == pytest.approx(15.0)


def test_pid_derivative_reacts_to_error_change():
    pid = PIDController(50.0, PIDGains(kp=0.0, ki=0.0, kd=1.0))
    # First sample is primed: no derivative kick.
    assert pid.update(40.0, dt=1.0) == pytest.approx(0.0)
    # Error went from +10 to -10 => derivative -20.
    assert pid.update(60.0, dt=1.0) == pytest.approx(-20.0)


def test_pid_converges_on_first_order_plant():
    """Closed loop: power follows actuation with lag; must settle near 50."""
    pid = PIDController(50.0, PIDGains(kp=0.5, ki=0.2, kd=0.0))
    power = 0.0
    for _ in range(300):
        signal = pid.update(power, dt=1.0)
        # plant: power moves 30% of the way towards (power + signal)
        power += 0.3 * signal
    assert power == pytest.approx(50.0, abs=1.0)


def test_pid_reset_clears_state():
    pid = PIDController(50.0, PIDGains(kp=0.0, ki=1.0, kd=0.0))
    pid.update(0.0, dt=1.0)
    pid.reset()
    assert pid.update(40.0, dt=1.0) == pytest.approx(10.0)


def test_pid_rejects_bad_dt():
    with pytest.raises(ValueError):
        PIDController(50.0).update(10.0, dt=0.0)


def test_pid_gain_validation():
    with pytest.raises(ValueError):
        PIDGains(kp=-1.0)
    with pytest.raises(ValueError):
        PIDController(50.0, integral_limit=0.0)

"""Tests for the execution engine (task runs, transfers, DVFS re-timing)."""

import pytest

from repro.aging.model import AgingModel
from repro.core.executor import ExecutionEngine
from repro.noc.model import NocModel
from repro.noc.topology import Mesh
from repro.platform.core import CoreState
from repro.power.meter import PowerMeter
from repro.workload.application import ApplicationGraph, ApplicationInstance
from repro.workload.task import Edge, Task


@pytest.fixture
def rig(sim, chip44):
    mesh = Mesh(chip44.width, chip44.height)
    noc = NocModel(mesh)
    meter = PowerMeter(chip44)
    engine = ExecutionEngine(sim, chip44, noc, meter, AgingModel(chip44.node))
    return sim, chip44, noc, meter, engine


def single_task_app(ops=3500.0, app_id=1):
    graph = ApplicationGraph("single", [Task(0, ops=ops)], [])
    return ApplicationInstance(app_id, graph, arrival_time=0.0)


def chain_app(n=3, ops=3500.0, volume=100.0, app_id=1):
    tasks = [Task(i, ops=ops) for i in range(n)]
    edges = [Edge(i, i + 1, volume) for i in range(n - 1)]
    graph = ApplicationGraph("chain", tasks, edges)
    return ApplicationInstance(app_id, graph, arrival_time=0.0)


def test_admit_claims_cores_and_starts_roots(rig):
    sim, chip, noc, meter, engine = rig
    app = chain_app(3)
    engine.admit(app, {0: 0, 1: 1, 2: 2})
    assert chip.core(0).state is CoreState.BUSY
    assert chip.core(1).state is CoreState.IDLE   # waits for input
    assert all(chip.core(i).owner_app == 1 for i in range(3))
    assert app.start_time == 0.0
    assert engine.running_tasks() == 1


def test_single_task_runs_for_expected_duration(rig):
    sim, chip, noc, meter, engine = rig
    app = single_task_app(ops=7000.0)  # 2 µs at 3500 ops/µs nominal
    done = []
    engine.on_app_finished.append(lambda a, now: done.append(now))
    engine.admit(app, {0: 5})
    sim.run()
    assert done == [pytest.approx(2.0)]
    assert chip.core(5).state is CoreState.IDLE
    assert chip.core(5).owner_app is None


def test_chain_executes_in_order_with_transfer_latency(rig):
    sim, chip, noc, meter, engine = rig
    app = chain_app(2, ops=3500.0, volume=1000.0)
    engine.admit(app, {0: 0, 1: 1})
    sim.run()
    # task0: 1 µs; transfer: 1 hop * 0.005 + 1000/1000 = 1.005 µs; task1: 1 µs
    assert app.finish_time == pytest.approx(3.005)


def test_busy_window_records_execution(rig):
    sim, chip, noc, meter, engine = rig
    app = single_task_app(ops=7000.0)
    engine.admit(app, {0: 0})
    sim.run()
    assert chip.core(0).busy_window.total_busy == pytest.approx(2.0)


def test_meter_sees_task_activity(rig):
    sim, chip, noc, meter, engine = rig
    graph = ApplicationGraph("a", [Task(0, ops=35000.0, activity=0.5)], [])
    app = ApplicationInstance(1, graph, 0.0)
    engine.admit(app, {0: 0})
    level = chip.core(0).level
    expected = chip.node.dynamic_power(level.vdd, level.f_mhz, 0.5)
    assert meter.breakdown().workload == pytest.approx(expected)
    sim.run()
    assert meter.breakdown().workload == 0.0


def test_transfer_power_registered_during_flight(rig):
    sim, chip, noc, meter, engine = rig
    app = chain_app(2, volume=2000.0)
    engine.admit(app, {0: 0, 1: 3})
    sim.run(until=1.5)  # task0 done at 1.0; transfer in flight
    assert meter.breakdown().noc > 0.0
    sim.run()
    assert meter.breakdown().noc == pytest.approx(0.0)


def test_zero_volume_edge_transfers_immediately(rig):
    sim, chip, noc, meter, engine = rig
    tasks = [Task(0, 3500.0), Task(1, 3500.0)]
    graph = ApplicationGraph("z", tasks, [Edge(0, 1, 0.0)])
    app = ApplicationInstance(1, graph, 0.0)
    engine.admit(app, {0: 0, 1: 1})
    sim.run()
    assert app.finish_time == pytest.approx(2.0)


def test_diamond_join_waits_for_both_inputs(rig):
    sim, chip, noc, meter, engine = rig
    tasks = [Task(0, 3500.0), Task(1, 3500.0), Task(2, 7000.0), Task(3, 3500.0)]
    edges = [Edge(0, 1, 0.0), Edge(0, 2, 0.0), Edge(1, 3, 0.0), Edge(2, 3, 0.0)]
    app = ApplicationInstance(1, ApplicationGraph("d", tasks, edges), 0.0)
    engine.admit(app, {0: 0, 1: 1, 2: 2, 3: 3})
    sim.run()
    # t0: [0,1]; t1: [1,2]; t2: [1,3]; t3 waits for t2 -> [3,4]
    assert app.finish_time == pytest.approx(4.0)


def test_core_released_after_outgoing_transfers(rig):
    sim, chip, noc, meter, engine = rig
    app = chain_app(2, volume=1000.0)
    engine.admit(app, {0: 0, 1: 1})
    sim.run(until=1.5)
    # task0 finished at 1.0 but its transfer is still draining.
    assert chip.core(0).state is CoreState.IDLE
    assert chip.core(0).owner_app == 1
    sim.run(until=2.2)  # transfer done at ~2.005
    assert chip.core(0).owner_app is None


def test_cores_freed_hook_fires(rig):
    sim, chip, noc, meter, engine = rig
    freed = []
    engine.on_cores_freed.append(freed.append)
    engine.admit(single_task_app(), {0: 0})
    sim.run()
    assert len(freed) == 1


def test_task_finished_hook(rig):
    sim, chip, noc, meter, engine = rig
    seen = []
    engine.on_task_finished.append(lambda task, now: seen.append(task.task_id))
    engine.admit(chain_app(3), {0: 0, 1: 1, 2: 2})
    sim.run()
    assert seen == [0, 1, 2]


def test_change_level_retimes_task(rig):
    """The core re-timing invariant: total ops executed equals task ops."""
    sim, chip, noc, meter, engine = rig
    app = single_task_app(ops=7000.0)  # 2 µs at nominal
    done = []
    engine.on_app_finished.append(lambda a, now: done.append(now))
    engine.admit(app, {0: 0})
    core = chip.core(0)
    half_level = chip.vf_table[0]
    sim.at(1.0, engine.change_level, core, half_level)  # 3500 ops left
    sim.run()
    expected = 1.0 + 3500.0 / half_level.speed
    assert done == [pytest.approx(expected)]


def test_change_level_multiple_times(rig):
    sim, chip, noc, meter, engine = rig
    app = single_task_app(ops=7000.0)
    done = []
    engine.on_app_finished.append(lambda a, now: done.append(now))
    engine.admit(app, {0: 0})
    core = chip.core(0)
    low = chip.vf_table[0]
    sim.at(0.5, engine.change_level, core, low)
    back = chip.vf_table.max_level
    sim.at(0.5 + 1.0, engine.change_level, core, back)
    sim.run()
    # 0.5 µs at 3500 = 1750 ops; 1.0 µs at low speed; rest at 3500.
    ops_after_low = 7000.0 - 1750.0 - 1.0 * low.speed
    expected = 1.5 + ops_after_low / 3500.0
    assert done == [pytest.approx(expected)]


def test_two_level_changes_at_same_instant_last_wins(rig):
    """Two actuations in one event round: the later call sets the speed."""
    sim, chip, noc, meter, engine = rig
    app = single_task_app(ops=7000.0)
    done = []
    engine.on_app_finished.append(lambda a, now: done.append(now))
    engine.admit(app, {0: 0})
    core = chip.core(0)
    low = chip.vf_table[0]
    high = chip.vf_table.max_level
    sim.at(1.0, engine.change_level, core, low)
    sim.at(1.0, engine.change_level, core, high)  # fires second, wins
    sim.run()
    assert core.level.index == high.index or done  # level restored on finish
    assert done == [pytest.approx(2.0)]  # same as never slowing down


def test_change_level_same_level_is_noop(rig):
    sim, chip, noc, meter, engine = rig
    engine.admit(single_task_app(), {0: 0})
    core = chip.core(0)
    before = core.busy_until
    engine.change_level(core, core.level)
    assert core.busy_until == before


def test_change_level_on_idle_core_raises(rig):
    sim, chip, noc, meter, engine = rig
    with pytest.raises(ValueError):
        engine.change_level(chip.core(0), chip.vf_table[0])


def test_change_level_accrues_aging_per_segment(rig):
    sim, chip, noc, meter, engine = rig
    app = single_task_app(ops=7000.0)
    engine.admit(app, {0: 0})
    core = chip.core(0)
    sim.at(1.0, engine.change_level, core, chip.vf_table[0])
    sim.run()
    assert core.age_stress > 0.0


def test_admit_rejects_incomplete_placement(rig):
    sim, chip, noc, meter, engine = rig
    with pytest.raises(ValueError, match="placement"):
        engine.admit(chain_app(3), {0: 0, 1: 1})


def test_admit_rejects_duplicate_cores(rig):
    sim, chip, noc, meter, engine = rig
    with pytest.raises(ValueError, match="one core"):
        engine.admit(chain_app(2), {0: 0, 1: 0})


def test_admit_rejects_unavailable_core(rig):
    sim, chip, noc, meter, engine = rig
    chip.core(0).state = CoreState.BUSY
    with pytest.raises(ValueError, match="not allocatable"):
        engine.admit(single_task_app(), {0: 0})


def test_two_apps_run_concurrently(rig):
    sim, chip, noc, meter, engine = rig
    finished = []
    engine.on_app_finished.append(lambda a, now: finished.append(a.app_id))
    engine.admit(single_task_app(app_id=1), {0: 0})
    engine.admit(single_task_app(app_id=2), {0: 5})
    sim.run()
    assert sorted(finished) == [1, 2]
    assert engine.active_apps() == 0


def test_start_level_provider_used(rig):
    sim, chip, noc, meter, engine = rig
    low = chip.vf_table[1]
    engine.start_level_provider = lambda core, activity: low
    engine.admit(single_task_app(), {0: 0})
    assert chip.core(0).level is low


def test_dvfs_transition_stall_delays_completion(sim, chip44):
    """A V/f switch costs the configured settling stall."""
    from repro.aging.model import AgingModel
    from repro.core.executor import ExecutionEngine
    from repro.noc.model import NocModel
    from repro.noc.topology import Mesh
    from repro.power.meter import PowerMeter

    engine = ExecutionEngine(
        sim, chip44, NocModel(Mesh(4, 4)), PowerMeter(chip44),
        AgingModel(chip44.node), dvfs_transition_us=10.0,
    )
    app = single_task_app(ops=7000.0)
    done = []
    engine.on_app_finished.append(lambda a, now: done.append(now))
    engine.admit(app, {0: 0})
    core = chip44.core(0)
    sim.at(1.0, engine.change_level, core, chip44.vf_table.max_level)  # no-op
    low = chip44.vf_table[0]
    sim.at(1.0, engine.change_level, core, low)
    sim.run()
    expected = 1.0 + 10.0 + 3500.0 / low.speed
    assert done == [pytest.approx(expected)]
    assert engine.dvfs_transitions == 1  # the same-level call was free


def test_dvfs_transition_validation(sim, chip44):
    from repro.core.executor import ExecutionEngine
    from repro.noc.model import NocModel
    from repro.noc.topology import Mesh
    from repro.power.meter import PowerMeter

    with pytest.raises(ValueError):
        ExecutionEngine(
            sim, chip44, NocModel(Mesh(4, 4)), PowerMeter(chip44),
            dvfs_transition_us=-1.0,
        )


def test_system_level_transition_overhead_costs_throughput():
    from dataclasses import replace

    from repro.core.system import SystemConfig, run_system

    base = SystemConfig(horizon_us=10_000.0, seed=5, arrival_rate_per_ms=8.0)
    free = run_system(base)
    costly = run_system(replace(base, dvfs_transition_us=50.0))
    assert costly.throughput_ops_per_us <= free.throughput_ops_per_us


def test_level_change_mid_stall_credits_no_progress(sim, chip44):
    """A switch landing inside a previous switch's stall loses no ops."""
    from repro.aging.model import AgingModel
    from repro.core.executor import ExecutionEngine
    from repro.noc.model import NocModel
    from repro.noc.topology import Mesh
    from repro.power.meter import PowerMeter

    engine = ExecutionEngine(
        sim, chip44, NocModel(Mesh(4, 4)), PowerMeter(chip44),
        AgingModel(chip44.node), dvfs_transition_us=10.0,
    )
    app = single_task_app(ops=7000.0)
    done = []
    engine.on_app_finished.append(lambda a, now: done.append(now))
    engine.admit(app, {0: 0})
    core = chip44.core(0)
    mid = chip44.vf_table[4]
    top = chip44.vf_table.max_level
    sim.at(1.0, engine.change_level, core, mid)   # stall [1, 11]
    sim.at(5.0, engine.change_level, core, top)   # mid-stall switch back
    sim.run()
    # 3500 ops done by t=1; no progress in [1, 5]; new stall [5, 15];
    # remaining 3500 ops at nominal finish at 15 + 1.
    assert done == [pytest.approx(16.0)]

"""Tests for baseline test-scheduling policies."""

import pytest

from repro.aging.model import AgingModel
from repro.platform.core import CoreState
from repro.power.meter import PowerMeter
from repro.testing.runner import TestRunner
from repro.testing.sbst import default_library
from repro.testing.schedulers import (
    NoTestScheduler,
    PowerUnawareTestScheduler,
    RoundRobinTestScheduler,
    TestSchedulerBase,
)


@pytest.fixture
def rig(sim, chip44):
    meter = PowerMeter(chip44)
    runner = TestRunner(sim, chip44, meter, default_library(), AgingModel(chip44.node))
    return sim, chip44, runner


# ----------------------------------------------------------------------
# Base helpers
# ----------------------------------------------------------------------
def test_due_cores_respects_interval(rig):
    sim, chip, runner = rig
    sched = NoTestScheduler(chip, runner, min_interval_us=1000.0)
    assert len(sched.due_cores(now=1000.0)) == 16
    chip.core(0).last_test_end = 500.0
    assert chip.core(0) not in sched.due_cores(now=1000.0)
    assert chip.core(0) in sched.due_cores(now=1500.0)


def test_due_cores_excludes_busy_and_owned(rig):
    sim, chip, runner = rig
    sched = NoTestScheduler(chip, runner, min_interval_us=0.0)
    chip.core(0).state = CoreState.BUSY
    chip.core(1).owner_app = 4
    due_ids = {c.core_id for c in sched.due_cores(now=10.0)}
    assert 0 not in due_ids
    assert 1 not in due_ids


def test_due_cores_sorted_longest_untested_first(rig):
    sim, chip, runner = rig
    sched = NoTestScheduler(chip, runner, min_interval_us=0.0)
    chip.core(3).last_test_end = 10.0
    chip.core(5).last_test_end = 5.0
    due = sched.due_cores(now=100.0)
    assert due[-1].core_id == 3
    assert due[-2].core_id == 5


def test_pick_level_nominal(rig):
    sim, chip, runner = rig
    sched = NoTestScheduler(chip, runner, level_policy="nominal")
    assert sched.pick_level(chip.core(0), 0.0).index == len(chip.vf_table) - 1


def test_pick_level_rotate_staggered_by_core(rig):
    sim, chip, runner = rig
    sched = NoTestScheduler(chip, runner, level_policy="rotate")
    n = len(chip.vf_table)
    picks = {sched.pick_level(chip.core(i), 0.0).index for i in range(n)}
    assert picks == set(range(n))  # first round covers every level chip-wide


def test_pick_level_rotate_prefers_least_recently_tested(rig):
    sim, chip, runner = rig
    sched = NoTestScheduler(chip, runner, level_policy="rotate")
    core = chip.core(0)
    n = len(chip.vf_table)
    for i in range(n):
        if i != 4:
            core.level_last_test[i] = 100.0 + i
    assert sched.pick_level(core, 200.0).index == 4


def test_level_policy_validation(rig):
    sim, chip, runner = rig
    with pytest.raises(ValueError):
        NoTestScheduler(chip, runner, level_policy="zigzag")
    with pytest.raises(ValueError):
        NoTestScheduler(chip, runner, min_interval_us=-1.0)


def test_base_preemptable_flags():
    assert NoTestScheduler.preemptable
    assert not PowerUnawareTestScheduler.preemptable
    assert not RoundRobinTestScheduler.preemptable
    assert not TestSchedulerBase.preemptable


# ----------------------------------------------------------------------
# NoTestScheduler
# ----------------------------------------------------------------------
def test_no_test_never_starts(rig):
    sim, chip, runner = rig
    sched = NoTestScheduler(chip, runner, min_interval_us=0.0)
    sched.tick(10.0, 100.0)
    assert runner.stats.started == 0


# ----------------------------------------------------------------------
# PowerUnawareTestScheduler
# ----------------------------------------------------------------------
def test_unaware_tests_every_due_core(rig):
    sim, chip, runner = rig
    sched = PowerUnawareTestScheduler(chip, runner, min_interval_us=0.0)
    sched.tick(10.0, 100.0)
    assert runner.stats.started == 16
    assert len(chip.testing_cores()) == 16


def test_unaware_skips_busy_cores(rig):
    sim, chip, runner = rig
    chip.core(0).state = CoreState.BUSY
    sched = PowerUnawareTestScheduler(chip, runner, min_interval_us=0.0)
    sched.tick(10.0, 100.0)
    assert runner.stats.started == 15


def test_unaware_does_not_restart_running_tests(rig):
    sim, chip, runner = rig
    sched = PowerUnawareTestScheduler(chip, runner, min_interval_us=0.0)
    sched.tick(10.0, 100.0)
    sched.tick(10.0, 100.0)  # same instant again: all cores now testing
    assert runner.stats.started == 16


# ----------------------------------------------------------------------
# RoundRobinTestScheduler
# ----------------------------------------------------------------------
def test_round_robin_caps_concurrency(rig):
    sim, chip, runner = rig
    sched = RoundRobinTestScheduler(
        chip, runner, min_interval_us=0.0, max_concurrent=3
    )
    sched.tick(10.0, 100.0)
    assert runner.stats.started == 3
    sched.tick(10.0, 100.0)
    assert runner.stats.started == 3  # slots full


def test_round_robin_advances_cursor(rig):
    sim, chip, runner = rig
    sched = RoundRobinTestScheduler(
        chip, runner, min_interval_us=0.0, max_concurrent=2
    )
    sched.tick(10.0, 100.0)
    first_batch = {s.core.core_id for s in runner.active_sessions()}
    assert first_batch == {0, 1}
    for core_id in first_batch:
        runner.abort(chip.core(core_id))
    # Mark them recently tested so they are not due again.
    chip.core(0).last_test_end = 10.0
    chip.core(1).last_test_end = 10.0
    sched.tick(11.0, 100.0)
    second_batch = {s.core.core_id for s in runner.active_sessions()}
    assert second_batch == {2, 3}


def test_round_robin_single_visit_per_tick(rig):
    """Regression: the cursor update must not revisit a just-started core."""
    sim, chip, runner = rig
    sched = RoundRobinTestScheduler(
        chip, runner, min_interval_us=0.0, max_concurrent=16
    )
    sched.tick(10.0, 100.0)  # would raise on a double start
    assert runner.stats.started == 16


def test_round_robin_validation(rig):
    sim, chip, runner = rig
    with pytest.raises(ValueError):
        RoundRobinTestScheduler(chip, runner, max_concurrent=0)

"""Tests for tasks, application graphs, generator and arrival processes."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.application import ApplicationGraph, ApplicationInstance
from repro.workload.arrivals import BurstyArrivalProcess, PoissonArrivalProcess
from repro.workload.generator import (
    PROFILE_PRESETS,
    ApplicationProfile,
    TaskGraphGenerator,
)
from repro.workload.task import Edge, Task


def diamond() -> ApplicationGraph:
    """A 4-task diamond: 0 -> {1, 2} -> 3."""
    tasks = [Task(i, ops=1000.0) for i in range(4)]
    edges = [Edge(0, 1, 10.0), Edge(0, 2, 10.0), Edge(1, 3, 10.0), Edge(2, 3, 10.0)]
    return ApplicationGraph("diamond", tasks, edges)


# ----------------------------------------------------------------------
# Task / Edge
# ----------------------------------------------------------------------
def test_task_duration_at_speed():
    task = Task(0, ops=3000.0)
    assert task.duration_at(1500.0) == pytest.approx(2.0)


def test_task_validation():
    with pytest.raises(ValueError):
        Task(0, ops=0.0)
    with pytest.raises(ValueError):
        Task(0, ops=10.0, activity=0.0)
    with pytest.raises(ValueError):
        Task(0, ops=10.0).duration_at(0.0)


def test_edge_validation():
    with pytest.raises(ValueError):
        Edge(1, 1)
    with pytest.raises(ValueError):
        Edge(0, 1, volume_flits=-5.0)


# ----------------------------------------------------------------------
# ApplicationGraph
# ----------------------------------------------------------------------
def test_topo_order_respects_edges():
    graph = diamond()
    order = graph.topo_order
    assert order.index(0) < order.index(1)
    assert order.index(0) < order.index(2)
    assert order.index(1) < order.index(3)
    assert order.index(2) < order.index(3)


def test_roots_and_sinks():
    graph = diamond()
    assert graph.roots() == [0]
    assert graph.sinks() == [3]


def test_totals():
    graph = diamond()
    assert graph.total_ops() == pytest.approx(4000.0)
    assert graph.total_comm_volume() == pytest.approx(40.0)


def test_critical_path():
    graph = diamond()
    assert graph.critical_path_ops() == pytest.approx(3000.0)  # 0 -> 1 -> 3


def test_cycle_detection():
    tasks = [Task(i, ops=10.0) for i in range(2)]
    with pytest.raises(ValueError, match="cycle"):
        ApplicationGraph("bad", tasks, [Edge(0, 1), Edge(1, 0)])


def test_duplicate_task_ids_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        ApplicationGraph("bad", [Task(0, 1.0), Task(0, 2.0)], [])


def test_edge_to_unknown_task_rejected():
    with pytest.raises(ValueError, match="unknown task"):
        ApplicationGraph("bad", [Task(0, 1.0)], [Edge(0, 9)])


# ----------------------------------------------------------------------
# ApplicationInstance
# ----------------------------------------------------------------------
def test_instance_ready_logic():
    app = ApplicationInstance(1, diamond(), arrival_time=0.0)
    assert app.task_ready(0)
    assert not app.task_ready(1)
    app.mark_task_done(0)
    assert not app.task_ready(1)  # edge not transferred yet
    app.transferred_edges.add((0, 1))
    assert app.task_ready(1)
    assert not app.task_ready(3)


def test_instance_ready_tasks_excludes_running_and_done():
    app = ApplicationInstance(1, diamond(), arrival_time=0.0)
    assert app.ready_tasks(running=[]) == [0]
    assert app.ready_tasks(running=[0]) == []
    app.mark_task_done(0)
    app.transferred_edges.update({(0, 1), (0, 2)})
    assert app.ready_tasks(running=[]) == [1, 2]


def test_instance_double_completion_rejected():
    app = ApplicationInstance(1, diamond(), arrival_time=0.0)
    app.mark_task_done(0)
    with pytest.raises(ValueError):
        app.mark_task_done(0)


def test_instance_finished_flag():
    app = ApplicationInstance(1, diamond(), arrival_time=0.0)
    for t in range(4):
        app.mark_task_done(t)
    assert app.is_finished()


def test_instance_timing_metrics():
    app = ApplicationInstance(1, diamond(), arrival_time=10.0)
    assert app.waiting_time() is None
    assert app.turnaround() is None
    app.start_time = 15.0
    app.finish_time = 40.0
    assert app.waiting_time() == pytest.approx(5.0)
    assert app.turnaround() == pytest.approx(30.0)


# ----------------------------------------------------------------------
# Generator
# ----------------------------------------------------------------------
def test_generator_respects_profile_ranges():
    profile = ApplicationProfile(
        name="t", n_tasks=(5, 9), ops=(100.0, 200.0),
        comm_volume=(1.0, 2.0), activity=(0.5, 0.6),
    )
    gen = TaskGraphGenerator(random.Random(1))
    for _ in range(20):
        graph = gen.generate(profile)
        assert 5 <= len(graph) <= 9
        for task in graph.tasks.values():
            assert 100.0 <= task.ops <= 200.0
            assert 0.5 <= task.activity <= 0.6
        for edge in graph.edges:
            assert 1.0 <= edge.volume_flits <= 2.0


def test_generator_graphs_are_connected_dags():
    gen = TaskGraphGenerator(random.Random(2))
    for _ in range(20):
        graph = gen.generate(PROFILE_PRESETS["medium"])
        # topological order exists (no exception) and every non-root task
        # has at least one predecessor
        roots = set(graph.roots())
        for task_id in graph.tasks:
            if task_id not in roots:
                assert graph.predecessors[task_id]


def test_generator_deterministic_from_seed():
    a = TaskGraphGenerator(random.Random(7)).generate(PROFILE_PRESETS["small"])
    b = TaskGraphGenerator(random.Random(7)).generate(PROFILE_PRESETS["small"])
    assert len(a) == len(b)
    assert [t.ops for t in a.tasks.values()] == [t.ops for t in b.tasks.values()]
    assert [(e.src, e.dst) for e in a.edges] == [(e.src, e.dst) for e in b.edges]


def test_generator_mix_weights():
    gen = TaskGraphGenerator(random.Random(3))
    graphs = gen.generate_mix(
        [PROFILE_PRESETS["small"], PROFILE_PRESETS["large"]], [1.0, 0.0], 10
    )
    assert all(g.name.startswith("small") for g in graphs)


def test_generator_mix_validation():
    gen = TaskGraphGenerator(random.Random(3))
    with pytest.raises(ValueError):
        gen.generate_mix([], [], 5)


def test_profile_validation():
    with pytest.raises(ValueError):
        ApplicationProfile(name="bad", n_tasks=(0, 5))
    with pytest.raises(ValueError):
        ApplicationProfile(name="bad", ops=(10.0, 1.0))
    with pytest.raises(ValueError):
        ApplicationProfile(name="bad", max_fanin=0)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_generator_never_produces_cycles(seed):
    gen = TaskGraphGenerator(random.Random(seed))
    graph = gen.generate(PROFILE_PRESETS["large"])
    assert len(graph.topo_order) == len(graph)


# ----------------------------------------------------------------------
# Arrivals
# ----------------------------------------------------------------------
def test_poisson_arrival_times_sorted_and_bounded():
    process = PoissonArrivalProcess(
        2.0, [PROFILE_PRESETS["small"]], rng=random.Random(1)
    )
    arrivals = process.generate(50_000.0)
    times = [a.time for a in arrivals]
    assert times == sorted(times)
    assert all(0.0 < t <= 50_000.0 for t in times)


def test_poisson_rate_approximation():
    process = PoissonArrivalProcess(
        2.0, [PROFILE_PRESETS["small"]], rng=random.Random(5)
    )
    arrivals = process.generate(200_000.0)
    # Expect ~400 arrivals; allow generous tolerance.
    assert 300 <= len(arrivals) <= 500


def test_poisson_deterministic_per_rng_seed():
    a = PoissonArrivalProcess(1.0, [PROFILE_PRESETS["small"]], rng=random.Random(9))
    b = PoissonArrivalProcess(1.0, [PROFILE_PRESETS["small"]], rng=random.Random(9))
    assert [x.time for x in a.generate(20_000.0)] == [
        x.time for x in b.generate(20_000.0)
    ]


def test_arrival_instantiate():
    process = PoissonArrivalProcess(
        5.0, [PROFILE_PRESETS["small"]], rng=random.Random(2)
    )
    arrival = process.generate(10_000.0)[0]
    app = arrival.instantiate(42)
    assert app.app_id == 42
    assert app.arrival_time == arrival.time
    assert app.graph is arrival.graph


def test_bursty_rate_exceeds_base_poisson():
    base = PoissonArrivalProcess(
        1.0, [PROFILE_PRESETS["small"]], rng=random.Random(4)
    ).generate(100_000.0)
    bursty = BurstyArrivalProcess(
        1.0, [PROFILE_PRESETS["small"]], rng=random.Random(4), burst_factor=5.0
    ).generate(100_000.0)
    assert len(bursty) > len(base)


def test_arrival_validation():
    with pytest.raises(ValueError):
        PoissonArrivalProcess(0.0, [PROFILE_PRESETS["small"]])
    with pytest.raises(ValueError):
        PoissonArrivalProcess(1.0, [])
    with pytest.raises(ValueError):
        PoissonArrivalProcess(1.0, [PROFILE_PRESETS["small"]], weights=[1.0, 2.0])
    process = PoissonArrivalProcess(1.0, [PROFILE_PRESETS["small"]])
    with pytest.raises(ValueError):
        process.generate(0.0)
    with pytest.raises(ValueError):
        BurstyArrivalProcess(
            1.0, [PROFILE_PRESETS["small"]], burst_factor=0.5
        )

"""Tests for the runtime telemetry pipeline (``repro.telemetry``).

The contract pinned here is the null-sink/digest-identity guarantee:
telemetry is write-only, so enabling it never changes what a run, a
sweep or a campaign computes — and merged snapshots are deterministic,
so serial, pooled and batched execution of the same work agree on every
invariant (``sim.*``/``power.*``/``test.*``/``cache.*``) counter.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import replace

import pytest

from repro.batch import result_digest
from repro.campaign import CampaignInterrupted, CampaignSpec, run_campaign
from repro.cli import main
from repro.core.system import SystemConfig, run_system
from repro.experiments.parallel import run_many
from repro.obs import Journal, configure
from repro.telemetry import (
    MetricsRegistry,
    NULL_TELEMETRY,
    SpanContext,
    TelemetrySession,
    Tracer,
    configure_telemetry,
    invariant_view,
    worker_telemetry,
)
from repro.telemetry.export import (
    atomic_write_text,
    prometheus_text,
    snapshot_json,
)
from repro.telemetry.status import (
    PROM_FILE,
    SNAPSHOT_FILE,
    STATUS_FILE,
    CampaignStatusWriter,
    degraded_status,
    load_status,
    read_status,
    render_status,
    render_top,
)


@pytest.fixture(autouse=True)
def _reset_process_globals():
    """Every test leaves the process-wide sinks off."""
    yield
    configure_telemetry(None)
    configure()


def small_config(**overrides) -> SystemConfig:
    base = {
        "width": 4,
        "height": 4,
        "horizon_us": 2000.0,
        "arrival_rate_per_ms": 8.0,
        "fault_hazard_per_us": 2e-4,
        "seed": 1,
    }
    base.update(overrides)
    return SystemConfig(**base)


def small_spec(**overrides) -> CampaignSpec:
    data = {
        "name": "tm-test",
        "base": {
            "width": 4,
            "height": 4,
            "horizon_us": 1500.0,
            "arrival_rate_per_ms": 8.0,
        },
        "grid": {"tdp_w": [30.0, 40.0]},
        "seeds": {"start": 1, "count": 2},
    }
    data.update(overrides)
    return CampaignSpec.from_dict(data)


# ----------------------------------------------------------------------
# Registry primitives
# ----------------------------------------------------------------------
def test_counter_gauge_histogram_basics():
    reg = MetricsRegistry()
    reg.counter("a.count").inc()
    reg.counter("a.count").inc(4)
    reg.gauge("a.level").set(2.0)
    reg.gauge("a.level").set(7.0)
    reg.gauge("a.level").set(3.0)
    reg.histogram("a.size").observe(1.5)
    reg.histogram("a.size").observe(1.5)
    snap = reg.snapshot()
    assert snap["counters"]["a.count"] == 5
    gauge = snap["gauges"]["a.level"]
    assert (gauge["last"], gauge["min"], gauge["max"], gauge["count"]) == (
        3.0, 2.0, 7.0, 3,
    )
    hist = snap["histograms"]["a.size"]
    assert hist["count"] == 2
    assert (hist["min"], hist["max"]) == (1.5, 1.5)
    assert sum(hist["counts"]) == 2


def test_registry_handles_are_cached_per_name():
    reg = MetricsRegistry()
    assert reg.counter("x") is reg.counter("x")
    assert reg.gauge("y") is reg.gauge("y")
    assert reg.histogram("z") is reg.histogram("z")


def test_snapshot_omits_untouched_metrics():
    reg = MetricsRegistry()
    reg.counter("touched").inc()
    reg.counter("untouched")
    reg.gauge("never.set")
    reg.histogram("never.observed")
    snap = reg.snapshot()
    assert list(snap["counters"]) == ["touched"]
    assert snap["gauges"] == {}
    assert snap["histograms"] == {}


def test_null_registry_is_inert():
    assert not NULL_TELEMETRY.enabled
    NULL_TELEMETRY.counter("x").inc(100)
    NULL_TELEMETRY.gauge("y").set(1.0)
    NULL_TELEMETRY.histogram("z").observe(1.0)
    snap = NULL_TELEMETRY.snapshot()
    assert snap == {"counters": {}, "gauges": {}, "histograms": {}}


def test_merge_is_order_independent():
    def make(seed_values):
        reg = MetricsRegistry()
        for v in seed_values:
            reg.counter("n").inc(v)
            reg.gauge("g").set(float(v))
            reg.histogram("h").observe(float(v))
        return reg.snapshot()

    parts = [make([1, 2]), make([30]), make([4, 5, 6])]
    merged_fwd = MetricsRegistry()
    for part in parts:
        merged_fwd.merge(part)
    merged_rev = MetricsRegistry()
    for part in reversed(parts):
        merged_rev.merge(part)
    assert merged_fwd.snapshot() == merged_rev.snapshot()
    snap = merged_fwd.snapshot()
    assert snap["counters"]["n"] == 48
    # Merge drops gauge ``last``: completion order is not data.
    gauge = snap["gauges"]["g"]
    assert gauge["last"] is None
    assert (gauge["min"], gauge["max"], gauge["count"]) == (1.0, 30.0, 6)
    assert snap["histograms"]["h"]["count"] == 6


def test_merge_rejects_mismatched_histogram_bounds():
    a = MetricsRegistry()
    a.histogram("h", bounds=(1.0, 2.0)).observe(1.5)
    b = MetricsRegistry()
    b.histogram("h", bounds=(1.0, 3.0)).observe(1.5)
    with pytest.raises(ValueError, match="bounds"):
        b.merge(a.snapshot())


def test_invariant_view_filters_machinery_namespaces():
    reg = MetricsRegistry()
    reg.counter("sim.events").inc(10)
    reg.counter("test.launch").inc(2)
    reg.counter("cache.hits").inc(1)
    reg.gauge("power.headroom_w").set(5.0)
    reg.counter("exec.completed").inc(3)
    reg.counter("batch.dispatches").inc(1)
    reg.counter("campaign.points").inc(4)
    view = invariant_view(reg.snapshot())
    assert set(view["counters"]) == {"sim.events", "test.launch", "cache.hits"}
    assert set(view["gauges"]) == {"power.headroom_w"}


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def test_prometheus_text_format():
    reg = MetricsRegistry()
    reg.counter("sim.events").inc(42)
    reg.gauge("power.headroom_w").set(3.5)
    reg.histogram("test.session_us", bounds=(10.0, 100.0)).observe(50.0)
    text = prometheus_text(reg.snapshot())
    assert "# TYPE repro_sim_events_total counter" in text
    assert "repro_sim_events_total 42" in text
    assert "repro_power_headroom_w 3.5" in text
    assert 'repro_test_session_us_bucket{le="100"} 1' in text
    assert 'repro_test_session_us_bucket{le="+Inf"} 1' in text
    assert text.endswith("\n")


def test_snapshot_json_schema_and_extras():
    reg = MetricsRegistry()
    reg.counter("sim.runs").inc()
    doc = json.loads(snapshot_json(reg.snapshot(), state="running"))
    assert doc["schema"] == "repro.telemetry/1"
    assert doc["state"] == "running"
    assert doc["metrics"]["counters"]["sim.runs"] == 1


def test_atomic_write_text(tmp_path):
    path = str(tmp_path / "out.txt")
    atomic_write_text(path, "hello\n")
    atomic_write_text(path, "world\n")
    with open(path) as handle:
        assert handle.read() == "world\n"
    # No temp litter left behind.
    assert os.listdir(str(tmp_path)) == ["out.txt"]


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def test_span_child_ids_are_deterministic():
    tracer = Tracer(trace_id="abc")
    root = tracer.start("sweep")
    ctx = root.context()
    assert isinstance(ctx, SpanContext)
    assert ctx.child_id("7") == f"{root.span_id}/7"
    child = tracer.start_child("sweep.run", ctx, "7")
    assert child.span_id == f"{root.span_id}/7"
    assert child.parent_id == root.span_id
    tracer.finish(child)
    assert child.end_s is not None


def test_span_data_round_trip():
    from repro.telemetry.spans import Span

    tracer = Tracer(trace_id="t1")
    span = tracer.start("work", attrs={"k": 1})
    tracer.finish(span, outcome="ok")
    data = span.to_data()
    back = Span.from_data(data)
    assert back.name == "work"
    assert back.attrs == {"k": 1, "outcome": "ok"}
    assert back.trace_id == "t1"


def test_session_spans_round_trip_through_journal(tmp_path):
    journal = Journal()
    configure(journal)
    session = TelemetrySession("sweep")
    with worker_telemetry(session.ctx, "0", "sweep.run") as scope:
        scope.registry.counter("sim.runs").inc()
    session.merge_blob(scope.blob())
    session.finish()
    configure()
    spans = [e for e in journal.events if e.type == "trace.span"]
    assert len(spans) == 2  # worker child + root
    names = {e.data["name"] for e in spans}
    assert names == {"sweep", "sweep.run"}
    # The journal file with spans in it still loads back unchanged.
    path = str(tmp_path / "journal.jsonl")
    journal.write_jsonl(path)
    events = Journal.load_jsonl(path)
    assert [e.type for e in events] == [e.type for e in journal.events]


def test_worker_telemetry_yields_none_without_ctx():
    with worker_telemetry(None, "0") as scope:
        assert scope is None


def test_worker_telemetry_restores_previous_registry():
    from repro.telemetry import active_telemetry

    outer = MetricsRegistry()
    configure_telemetry(outer)
    ctx = TelemetrySession("s").ctx
    with worker_telemetry(ctx, "0") as scope:
        assert active_telemetry() is scope.registry
        assert active_telemetry() is not outer
    assert active_telemetry() is outer


# ----------------------------------------------------------------------
# Single-run instrumentation: digest identity + expected counters
# ----------------------------------------------------------------------
def test_run_system_digest_identical_with_telemetry():
    config = small_config()
    baseline = result_digest(run_system(config))
    reg = MetricsRegistry()
    observed = result_digest(run_system(config, telemetry=reg))
    assert observed == baseline
    snap = reg.snapshot()
    assert snap["counters"]["sim.runs"] == 1
    assert snap["counters"]["sim.events"] > 0
    assert snap["counters"]["sim.epochs"] > 0
    assert snap["gauges"]["power.measured_w"]["count"] > 0
    assert snap["gauges"]["power.headroom_w"]["count"] > 0


def test_run_system_picks_up_process_registry():
    reg = MetricsRegistry()
    configure_telemetry(reg)
    run_system(small_config())
    configure_telemetry(None)
    assert reg.snapshot()["counters"]["sim.runs"] == 1


# ----------------------------------------------------------------------
# Sweeps: serial == pooled == batched
# ----------------------------------------------------------------------
def _sweep_configs():
    base = small_config(max_concurrent_tests=1)
    return [replace(base, seed=s) for s in (1, 2, 3, 4)]


def _sweep_snapshot(**kwargs):
    reg = MetricsRegistry()
    configure_telemetry(reg)
    try:
        results = run_many(_sweep_configs(), **kwargs)
    finally:
        configure_telemetry(None)
    return [result_digest(r) for r in results], reg.snapshot()


def test_sweep_paths_merge_to_identical_invariants():
    serial_rows, serial_snap = _sweep_snapshot()
    pooled_rows, pooled_snap = _sweep_snapshot(jobs=2)
    batched_rows, batched_snap = _sweep_snapshot(batch_size=2)
    baseline = [result_digest(r) for r in run_many(_sweep_configs())]
    assert serial_rows == pooled_rows == batched_rows == baseline
    serial_view = invariant_view(serial_snap)
    assert serial_view == invariant_view(pooled_snap)
    assert serial_view == invariant_view(batched_snap)
    assert serial_view["counters"]["sim.runs"] == 4
    # Pooled-path gauge merges drop ``last``; the extrema survive.
    assert serial_snap["gauges"]["power.measured_w"]["last"] is None


def test_batched_sweep_counts_batch_lanes():
    _rows, snap = _sweep_snapshot(batch_size=2)
    assert snap["counters"]["batch.dispatches"] == 2
    assert snap["counters"]["batch.lanes"] == 4


# ----------------------------------------------------------------------
# Journal forces the scalar oracle; telemetry does not (satellite)
# ----------------------------------------------------------------------
def _event_type_counts(events):
    counts = {}
    for event in events:
        counts[event.type] = counts.get(event.type, 0) + 1
    return counts


def test_batched_run_many_with_journal_falls_back_to_scalar():
    configs = _sweep_configs()
    # Per-run scalar references, each under its own journal.
    reference_counts = {}
    reference_digests = []
    for config in configs:
        journal = Journal()
        reference_digests.append(
            result_digest(run_system(config, journal=journal))
        )
        for etype, n in _event_type_counts(journal.events).items():
            reference_counts[etype] = reference_counts.get(etype, 0) + n
    assert reference_counts, "scalar references produced no events"
    # Batched sweep under a process-wide journal: must fall back to the
    # scalar engine AND emit the union of the per-run event streams.
    journal = Journal()
    configure(journal)
    try:
        results = run_many(configs, batch_size=2)
    finally:
        configure()
    assert [result_digest(r) for r in results] == reference_digests
    assert _event_type_counts(journal.events) == reference_counts


# ----------------------------------------------------------------------
# Campaign status surface
# ----------------------------------------------------------------------
def test_campaign_digest_identical_with_telemetry(tmp_path):
    off = run_campaign(
        str(tmp_path / "off"), spec=small_spec(), telemetry=False
    )
    on = run_campaign(str(tmp_path / "on"), spec=small_spec())
    assert on.aggregate == off.aggregate
    assert not os.path.exists(str(tmp_path / "off" / STATUS_FILE))
    for name in (STATUS_FILE, PROM_FILE, SNAPSHOT_FILE):
        assert os.path.exists(str(tmp_path / "on" / name))


def test_campaign_status_lifecycle_interrupt_then_resume(tmp_path):
    cdir = str(tmp_path / "camp")
    with pytest.raises(CampaignInterrupted):
        run_campaign(cdir, spec=small_spec(), interrupt_after=2)
    status = read_status(cdir)
    assert status is not None
    assert status["schema"] == "repro.campaign.status/1"
    assert status["state"] == "interrupted"
    assert status["points_done"] == 2
    assert status["points_planned"] == 4
    assert status["rate_per_s"] > 0
    assert status["events_per_s"] > 0
    run_campaign(cdir, resume=True)
    status = read_status(cdir)
    assert status["state"] == "complete"
    assert status["points_done"] == 4
    assert status["workers"], "no worker heartbeats recorded"
    metrics = status["metrics"]
    assert metrics["counters"]["exec.completed"] == 2  # this run only
    # The Prometheus export mirrors the same snapshot.
    with open(str(tmp_path / "camp" / PROM_FILE)) as handle:
        assert "repro_sim_events_total" in handle.read()


def test_campaign_paths_merge_to_identical_invariants(tmp_path):
    def snapshot_for(name, **kwargs):
        run_campaign(str(tmp_path / name), spec=small_spec(), **kwargs)
        return read_status(str(tmp_path / name))["metrics"]

    serial = snapshot_for("serial")
    pooled = snapshot_for("pooled", jobs=2)
    batched = snapshot_for("batched", batch=2)
    assert invariant_view(serial) == invariant_view(pooled)
    assert invariant_view(serial) == invariant_view(batched)


def test_degraded_status_for_pre_telemetry_dir(tmp_path):
    """A PR-3-era checkpoint dir (no status file) stays inspectable."""
    cdir = str(tmp_path / "old")
    run_campaign(cdir, spec=small_spec(), telemetry=False)
    # Emulate the pre-telemetry layout exactly: spec + results only.
    for name in ("manifest.json", "failures.jsonl"):
        path = os.path.join(cdir, name)
        if os.path.exists(path):
            os.unlink(path)
    assert sorted(os.listdir(cdir)) == ["results.jsonl", "spec.json"]
    status = load_status(cdir)
    assert status["degraded"] is True
    assert status["state"] == "unknown"
    assert status["points_done"] == 4
    assert status["points_planned"] == 4
    rendered = render_status(status)
    assert "results.jsonl" in rendered
    assert "4/4" in rendered


def test_degraded_status_rejects_non_campaign_dir(tmp_path):
    with pytest.raises(OSError):
        degraded_status(str(tmp_path))


def test_status_writer_throttles_and_forces(tmp_path):
    reg = MetricsRegistry()
    writer = CampaignStatusWriter(
        str(tmp_path), "t", reg, planned=10, min_interval_s=3600.0
    )
    assert writer.write("running") is True
    writer.note_points(3)
    assert writer.write("running") is False  # throttled
    assert read_status(str(tmp_path))["points_done"] == 0
    assert writer.write("complete", force=True) is True
    assert read_status(str(tmp_path))["points_done"] == 3


def test_render_top_lists_every_campaign():
    rows = [
        {
            "name": "a", "state": "running", "points_done": 1,
            "points_planned": 4, "rate_per_s": 2.0, "eta_s": 1.5,
            "events_per_s": 1000.0, "workers": {"1": {}},
        },
        {
            "name": "b", "state": "unknown", "points_done": 2,
            "points_planned": None, "rate_per_s": None, "eta_s": None,
            "events_per_s": None, "workers": {},
        },
    ]
    text = render_top(rows)
    lines = text.splitlines()
    assert len(lines) == 3
    assert "CAMPAIGN" in lines[0]
    assert "2/?" in lines[2]


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
def test_cli_campaign_status_and_top(tmp_path, capsys):
    cdir = str(tmp_path / "camp")
    run_campaign(cdir, spec=small_spec())
    assert main(["campaign", "status", cdir]) == 0
    assert "complete" in capsys.readouterr().out
    assert main(["campaign", "status", cdir, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == "repro.campaign.status/1"
    assert main(["top", cdir]) == 0
    assert "CAMPAIGN" in capsys.readouterr().out


def test_cli_status_missing_dir_exit_codes(tmp_path, capsys):
    missing = str(tmp_path / "nope")
    assert main(["campaign", "status", missing]) == 2
    assert main(["top", missing]) == 2
    capsys.readouterr()


def test_cli_no_telemetry_flag(tmp_path):
    spec_path = str(tmp_path / "spec.json")
    small_spec().save(spec_path)
    cdir = str(tmp_path / "camp")
    assert main(
        ["campaign", "run", spec_path, "--dir", cdir, "--no-telemetry"]
    ) == 0
    assert not os.path.exists(os.path.join(cdir, STATUS_FILE))


def test_cli_run_telemetry_flag(capsys):
    assert main(["run", "--horizon-ms", "2", "--telemetry"]) == 0
    out = capsys.readouterr().out
    assert "telemetry:" in out
    assert "sim.events" in out

"""Tests for the proposed test-aware utilization-oriented mapper."""

import pytest

from repro.core.criticality import CriticalityParameters, TestCriticality
from repro.core.mapping import TestAwareUtilizationMapper
from repro.mapping.base import MappingContext
from repro.noc.topology import Mesh
from repro.platform.core import CoreState
from repro.workload.application import ApplicationGraph, ApplicationInstance
from repro.workload.task import Edge, Task


@pytest.fixture
def metric():
    return TestCriticality(CriticalityParameters())


@pytest.fixture
def mapper(metric):
    return TestAwareUtilizationMapper(
        metric,
        utilization_weight=3.0,
        criticality_weight=3.0,
        testing_penalty=6.0,
        utilization_window_us=1000.0,
    )


def make_ctx(chip, now=1000.0, available=None):
    mesh = Mesh(chip.width, chip.height)
    cores = available if available is not None else chip.free_cores()
    return MappingContext(chip, mesh, now, cores)


def one_task_app():
    return ApplicationInstance(
        1, ApplicationGraph("one", [Task(0, ops=100.0)], []), 0.0
    )


def test_cost_grows_with_utilization(mapper, chip44):
    hot, cold = chip44.core(0), chip44.core(1)
    hot.busy_window.add(0.0, 900.0)
    assert mapper.core_cost(1000.0, hot) > mapper.core_cost(1000.0, cold)


def test_cost_grows_with_criticality(mapper, chip44):
    stressed, fresh = chip44.core(0), chip44.core(1)
    stressed.stress_since_test = 50.0
    assert mapper.core_cost(1000.0, stressed) > mapper.core_cost(1000.0, fresh)


def test_criticality_term_saturates(mapper, chip44):
    a, b = chip44.core(0), chip44.core(1)
    a.stress_since_test = 1e3
    b.stress_since_test = 1e6
    assert mapper.core_cost(1000.0, a) == pytest.approx(
        mapper.core_cost(1000.0, b)
    )


def test_testing_core_penalised(mapper, chip44):
    testing, idle = chip44.core(0), chip44.core(1)
    testing.state = CoreState.TESTING
    assert (
        mapper.core_cost(1000.0, testing)
        >= mapper.core_cost(1000.0, idle) + mapper.testing_penalty
    )


def test_single_task_lands_on_untouched_core(mapper, chip44):
    """All else equal, the stressed core is avoided."""
    for core in chip44:
        core.stress_since_test = 0.0
    chip44.core(5).stress_since_test = 100.0
    app = one_task_app()
    placement = mapper.map_application(app, make_ctx(chip44))
    assert placement[0] != 5


def test_avoids_testing_core_when_alternatives_exist(mapper, chip44):
    chip44.core(0).state = CoreState.TESTING
    available = [chip44.core(0), chip44.core(1)]
    app = one_task_app()
    placement = mapper.map_application(app, make_ctx(chip44, available=available))
    assert placement[0] == 1


def test_none_when_insufficient_cores(mapper, chip44):
    tasks = [Task(i, 10.0) for i in range(5)]
    edges = [Edge(i, i + 1) for i in range(4)]
    app = ApplicationInstance(1, ApplicationGraph("big", tasks, edges), 0.0)
    ctx = make_ctx(chip44, available=chip44.free_cores()[:3])
    assert mapper.map_application(app, ctx) is None


def test_placement_still_contiguous(mapper, chip44):
    """Policy bias must not destroy communication locality."""
    tasks = [Task(i, 10.0) for i in range(4)]
    edges = [Edge(i, i + 1, 10.0) for i in range(3)]
    app = ApplicationInstance(1, ApplicationGraph("c", tasks, edges), 0.0)
    placement = mapper.map_application(app, make_ctx(chip44))
    for edge in app.graph.edges:
        a = chip44.core(placement[edge.src]).position
        b = chip44.core(placement[edge.dst]).position
        assert Mesh.manhattan(a, b) <= 3


def test_zero_weights_reduce_to_contiguous_behaviour(metric, chip44):
    from repro.mapping.baselines import ContiguousMapper

    neutral = TestAwareUtilizationMapper(
        metric, utilization_weight=0.0, criticality_weight=0.0, testing_penalty=0.0
    )
    tasks = [Task(i, 10.0) for i in range(4)]
    edges = [Edge(i, i + 1, 10.0) for i in range(3)]
    app = ApplicationInstance(1, ApplicationGraph("c", tasks, edges), 0.0)
    # Stress some cores: must not matter with zero weights.
    chip44.core(0).stress_since_test = 100.0
    a = neutral.map_application(app, make_ctx(chip44))
    b = ContiguousMapper().map_application(app, make_ctx(chip44))
    assert a == b


def test_constructor_validation(metric):
    with pytest.raises(ValueError):
        TestAwareUtilizationMapper(metric, utilization_weight=-1.0)
    with pytest.raises(ValueError):
        TestAwareUtilizationMapper(metric, utilization_window_us=0.0)

"""Tests for cross-seed replication statistics."""

import math

import pytest

from repro.core.system import SystemConfig
from repro.metrics.stats import (
    Estimate,
    compare_policies,
    estimate,
    replicate,
    summarize_replicas,
)

QUICK = SystemConfig(horizon_us=6_000.0, arrival_rate_per_ms=8.0)


# ----------------------------------------------------------------------
# Estimate
# ----------------------------------------------------------------------
def test_estimate_mean():
    e = estimate([1.0, 2.0, 3.0])
    assert e.mean == pytest.approx(2.0)
    assert e.n == 3


def test_estimate_single_sample_infinite_width():
    e = estimate([5.0])
    assert math.isinf(e.half_width)


def test_estimate_zero_variance():
    e = estimate([4.0, 4.0, 4.0])
    assert e.half_width == 0.0


def test_estimate_t_value_two_samples():
    # n=2: hw = t(df=1) * sd / sqrt(2) with sd = |a-b|/sqrt(2)
    e = estimate([0.0, 2.0])
    sd = math.sqrt(2.0)
    assert e.half_width == pytest.approx(12.706 * sd / math.sqrt(2))


def test_estimate_large_n_uses_normal():
    samples = [float(i % 3) for i in range(30)]
    e = estimate(samples)
    assert e.half_width < 1.0  # 1.96 * sd/sqrt(30)


def test_estimate_rejects_empty():
    with pytest.raises(ValueError):
        estimate([])


def test_estimate_bounds_and_str():
    e = estimate([1.0, 3.0, 5.0])
    assert e.low == pytest.approx(e.mean - e.half_width)
    assert e.high == pytest.approx(e.mean + e.half_width)
    assert "±" in str(e)


def test_overlap_logic():
    a = Estimate(mean=1.0, half_width=0.5, n=3)
    b = Estimate(mean=1.8, half_width=0.5, n=3)
    c = Estimate(mean=3.0, half_width=0.5, n=3)
    assert a.overlaps(b)
    assert not a.overlaps(c)


# ----------------------------------------------------------------------
# Replication
# ----------------------------------------------------------------------
def test_replicate_runs_each_seed():
    results = replicate(QUICK, seeds=(1, 2))
    assert len(results) == 2
    assert results[0].config.seed == 1
    assert results[1].config.seed == 2
    assert results[0].summary() != results[1].summary()


def test_replicate_rejects_no_seeds():
    with pytest.raises(ValueError):
        replicate(QUICK, seeds=())


def test_summarize_replicas_keys_match_summary():
    results = replicate(QUICK, seeds=(1, 2))
    summary = summarize_replicas(results)
    assert set(summary) == set(results[0].summary())
    for est in summary.values():
        assert est.n == 2


def test_summarize_replicas_rejects_empty():
    with pytest.raises(ValueError):
        summarize_replicas([])


def test_compare_policies_paired():
    out = compare_policies(
        QUICK, "test_policy", ("none", "unaware"), seeds=(1, 2)
    )
    assert set(out) == {"none", "unaware"}
    assert all(e.n == 2 for e in out.values())


def test_compare_policies_custom_metric():
    out = compare_policies(
        QUICK,
        "test_policy",
        ("none",),
        seeds=(1,),
        metric=lambda r: float(r.tests_completed),
    )
    assert out["none"].mean == 0.0


def test_compare_policies_rejects_empty_values():
    with pytest.raises(ValueError):
        compare_policies(QUICK, "test_policy", (), seeds=(1,))

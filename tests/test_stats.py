"""Tests for cross-seed replication statistics."""

import math
import statistics

import pytest

from repro.core.system import SystemConfig
from repro.metrics.stats import (
    Estimate,
    binomial_interval,
    clopper_pearson_interval,
    compare_policies,
    estimate,
    halfwidth_met,
    replicate,
    summarize_replicas,
    wilson_interval,
)

QUICK = SystemConfig(horizon_us=6_000.0, arrival_rate_per_ms=8.0)


# ----------------------------------------------------------------------
# Estimate
# ----------------------------------------------------------------------
def test_estimate_mean():
    e = estimate([1.0, 2.0, 3.0])
    assert e.mean == pytest.approx(2.0)
    assert e.n == 3


def test_estimate_single_sample_infinite_width():
    e = estimate([5.0])
    assert math.isinf(e.half_width)


def test_estimate_zero_variance():
    e = estimate([4.0, 4.0, 4.0])
    assert e.half_width == 0.0


def test_estimate_t_value_two_samples():
    # n=2: hw = t(df=1) * sd / sqrt(2) with sd = |a-b|/sqrt(2)
    e = estimate([0.0, 2.0])
    sd = math.sqrt(2.0)
    assert e.half_width == pytest.approx(12.706 * sd / math.sqrt(2))


def test_estimate_large_n_uses_normal():
    samples = [float(i % 3) for i in range(30)]
    e = estimate(samples)
    assert e.half_width < 1.0  # 1.96 * sd/sqrt(30)


def test_estimate_rejects_empty():
    with pytest.raises(ValueError):
        estimate([])


def test_estimate_bounds_and_str():
    e = estimate([1.0, 3.0, 5.0])
    assert e.low == pytest.approx(e.mean - e.half_width)
    assert e.high == pytest.approx(e.mean + e.half_width)
    assert "±" in str(e)


def test_overlap_logic():
    a = Estimate(mean=1.0, half_width=0.5, n=3)
    b = Estimate(mean=1.8, half_width=0.5, n=3)
    c = Estimate(mean=3.0, half_width=0.5, n=3)
    assert a.overlaps(b)
    assert not a.overlaps(c)


# ----------------------------------------------------------------------
# Replication
# ----------------------------------------------------------------------
def test_replicate_runs_each_seed():
    results = replicate(QUICK, seeds=(1, 2))
    assert len(results) == 2
    assert results[0].config.seed == 1
    assert results[1].config.seed == 2
    assert results[0].summary() != results[1].summary()


def test_replicate_rejects_no_seeds():
    with pytest.raises(ValueError):
        replicate(QUICK, seeds=())


def test_summarize_replicas_keys_match_summary():
    results = replicate(QUICK, seeds=(1, 2))
    summary = summarize_replicas(results)
    assert set(summary) == set(results[0].summary())
    for est in summary.values():
        assert est.n == 2


def test_summarize_replicas_rejects_empty():
    with pytest.raises(ValueError):
        summarize_replicas([])


def test_compare_policies_paired():
    out = compare_policies(
        QUICK, "test_policy", ("none", "unaware"), seeds=(1, 2)
    )
    assert set(out) == {"none", "unaware"}
    assert all(e.n == 2 for e in out.values())


def test_compare_policies_custom_metric():
    out = compare_policies(
        QUICK,
        "test_policy",
        ("none",),
        seeds=(1,),
        metric=lambda r: float(r.tests_completed),
    )
    assert out["none"].mean == 0.0


def test_compare_policies_rejects_empty_values():
    with pytest.raises(ValueError):
        compare_policies(QUICK, "test_policy", (), seeds=(1,))


# ----------------------------------------------------------------------
# Student-t table edges
# ----------------------------------------------------------------------
def test_estimate_t_table_boundary_df10():
    # n=11 -> df=10, the last tabulated row (2.228).
    samples = [float(i) for i in range(11)]
    sd = statistics.stdev(samples)
    e = estimate(samples)
    assert e.half_width == pytest.approx(2.228 * sd / math.sqrt(11))


def test_estimate_t_fallback_beyond_table_uses_normal():
    # n=12 -> df=11, past the table: the normal 1.96 fallback.
    samples = [float(i) for i in range(12)]
    sd = statistics.stdev(samples)
    e = estimate(samples)
    assert e.half_width == pytest.approx(1.96 * sd / math.sqrt(12))


def test_estimate_degenerate_identical_large_sample():
    e = estimate([7.5] * 40)
    assert e.mean == pytest.approx(7.5)
    assert e.half_width == 0.0
    assert e.low == e.high == pytest.approx(7.5)


# ----------------------------------------------------------------------
# Binomial intervals (campaign stopping rules)
# ----------------------------------------------------------------------
def test_wilson_matches_hand_formula():
    est = wilson_interval(8, 10)
    p, n, z = 0.8, 10, 1.96
    denom = 1 + z * z / n
    centre = (p + z * z / (2 * n)) / denom
    margin = z * math.sqrt(p * (1 - p) / n + z * z / (4 * n * n)) / denom
    assert est.low == pytest.approx(centre - margin)
    assert est.high == pytest.approx(centre + margin)
    assert est.point == pytest.approx(0.8)
    assert est.method == "wilson"


def test_wilson_boundaries_stay_in_unit_interval():
    for successes, n in [(0, 5), (5, 5), (0, 1), (1, 1)]:
        est = wilson_interval(successes, n)
        assert 0.0 <= est.low <= est.high <= 1.0
        assert est.low <= est.point <= est.high


def test_wilson_zero_trials_is_vacuous():
    est = wilson_interval(0, 0)
    assert (est.low, est.high) == (0.0, 1.0)
    assert est.point == 0.0
    assert math.isinf(est.half_width)


def test_wilson_narrows_with_n():
    small = wilson_interval(8, 10)
    large = wilson_interval(80, 100)
    assert large.half_width < small.half_width


def test_clopper_pearson_zero_successes_closed_form():
    # k=0: interval is [0, 1 - (alpha/2)^(1/n)].
    n = 20
    est = clopper_pearson_interval(0, n)
    assert est.low == 0.0
    assert est.high == pytest.approx(1.0 - 0.025 ** (1.0 / n), abs=1e-9)


def test_clopper_pearson_all_successes_closed_form():
    # k=n: interval is [(alpha/2)^(1/n), 1].
    n = 20
    est = clopper_pearson_interval(n, n)
    assert est.high == 1.0
    assert est.low == pytest.approx(0.025 ** (1.0 / n), abs=1e-9)


def test_clopper_pearson_covers_and_contains_point():
    est = clopper_pearson_interval(8, 10)
    assert est.low < 0.8 < est.high
    # Exact interval is at least as wide as Wilson's approximation.
    assert est.half_width >= wilson_interval(8, 10).half_width


def test_clopper_pearson_symmetry():
    a = clopper_pearson_interval(3, 10)
    b = clopper_pearson_interval(7, 10)
    assert a.low == pytest.approx(1.0 - b.high, abs=1e-9)
    assert a.high == pytest.approx(1.0 - b.low, abs=1e-9)


def test_clopper_pearson_rejects_bad_alpha():
    with pytest.raises(ValueError):
        clopper_pearson_interval(1, 2, alpha=0.0)
    with pytest.raises(ValueError):
        clopper_pearson_interval(1, 2, alpha=1.0)


def test_binomial_interval_dispatch_and_unknown_method():
    assert binomial_interval(3, 4, "wilson").method == "wilson"
    assert (
        binomial_interval(3, 4, "clopper-pearson").method == "clopper-pearson"
    )
    with pytest.raises(ValueError):
        binomial_interval(3, 4, "jeffreys")


def test_binomial_input_validation():
    with pytest.raises(ValueError):
        wilson_interval(-1, 5)
    with pytest.raises(ValueError):
        wilson_interval(6, 5)
    with pytest.raises(ValueError):
        clopper_pearson_interval(3, -1)


def test_halfwidth_met_semantics():
    # No evidence yet: never satisfied, however loose the target.
    assert not halfwidth_met(0, 0, 0.49)
    # 490/500 detections: half-width ~0.013, comfortably under 0.05.
    assert halfwidth_met(490, 500, 0.05)
    assert not halfwidth_met(5, 10, 0.05)
    with pytest.raises(ValueError):
        halfwidth_met(1, 2, 0.0)
    with pytest.raises(ValueError):
        halfwidth_met(1, 2, -0.1)

"""Tests for the test-criticality metric."""

import pytest
from hypothesis import given, strategies as st

from repro.core.criticality import CriticalityParameters, TestCriticality


@pytest.fixture
def metric():
    return TestCriticality(
        CriticalityParameters(
            stress_weight=0.7,
            time_weight=0.3,
            stress_reference=4.0,
            time_reference_us=4000.0,
            threshold=1.0,
        )
    )


def test_zero_right_after_test(metric, chip44):
    core = chip44.core(0)
    core.last_test_end = 100.0
    core.stress_since_test = 0.0
    assert metric.value(core, now=100.0) == 0.0


def test_value_combines_terms(metric, chip44):
    core = chip44.core(0)
    core.stress_since_test = 4.0      # one stress unit
    core.last_test_end = 0.0
    assert metric.value(core, now=4000.0) == pytest.approx(0.7 + 0.3)


def test_value_grows_with_stress(metric, chip44):
    a, b = chip44.core(0), chip44.core(1)
    a.stress_since_test = 1.0
    b.stress_since_test = 2.0
    assert metric.value(b, 0.0) > metric.value(a, 0.0)


def test_value_grows_with_time(metric, chip44):
    core = chip44.core(0)
    assert metric.value(core, 2000.0) < metric.value(core, 8000.0)


def test_stressed_core_due_much_earlier(metric, chip44):
    """The adaptivity property: busy cores cross the threshold sooner."""
    idle, hot = chip44.core(0), chip44.core(1)
    hot.stress_since_test = 8.0   # heavy stress
    # Idle core is not due until t = T_ref/w_t ~ 13333 µs.
    assert not metric.is_due(idle, now=6000.0)
    assert metric.is_due(hot, now=6000.0)
    assert metric.is_due(idle, now=14000.0)


def test_rank_most_critical_first(metric, chip44):
    cores = [chip44.core(i) for i in range(4)]
    for i, core in enumerate(cores):
        core.stress_since_test = float(i)
    ranked = metric.rank(cores, now=0.0)
    assert [c.core_id for c in ranked] == [3, 2, 1, 0]


def test_rank_tie_breaks_by_core_id(metric, chip44):
    cores = [chip44.core(i) for i in (3, 1, 2)]
    ranked = metric.rank(cores, now=0.0)
    assert [c.core_id for c in ranked] == [1, 2, 3]


def test_time_term_clamped_at_zero_for_future_last_test(metric, chip44):
    core = chip44.core(0)
    core.last_test_end = 100.0
    assert metric.value(core, now=50.0) == 0.0


def test_parameter_validation():
    with pytest.raises(ValueError):
        CriticalityParameters(stress_weight=-0.1)
    with pytest.raises(ValueError):
        CriticalityParameters(stress_weight=0.0, time_weight=0.0)
    with pytest.raises(ValueError):
        CriticalityParameters(stress_reference=0.0)
    with pytest.raises(ValueError):
        CriticalityParameters(time_reference_us=0.0)
    with pytest.raises(ValueError):
        CriticalityParameters(threshold=0.0)


@given(
    st.floats(min_value=0.0, max_value=100.0),
    st.floats(min_value=0.0, max_value=100.0),
    st.floats(min_value=0.0, max_value=1e5),
)
def test_value_monotonic_in_stress(stress_a, stress_b, now):
    metric = TestCriticality(CriticalityParameters())
    from repro.platform.chip import Chip

    chip = Chip.build(2, 2)
    a, b = chip.core(0), chip.core(1)
    a.stress_since_test = min(stress_a, stress_b)
    b.stress_since_test = max(stress_a, stress_b)
    assert metric.value(a, now) <= metric.value(b, now)

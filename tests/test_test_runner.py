"""Tests for SBST test execution (the runner)."""

import random

import pytest

from repro.aging.faults import FaultInjector, FaultParameters
from repro.aging.model import AgingModel
from repro.platform.core import CoreState
from repro.power.meter import PowerMeter
from repro.testing.runner import TestRunner
from repro.testing.sbst import default_library


@pytest.fixture
def rig(sim, chip44):
    meter = PowerMeter(chip44)
    library = default_library()
    aging = AgingModel(chip44.node)
    injector = FaultInjector(
        chip44, FaultParameters(base_hazard_per_us=0.0), random.Random(1)
    )
    runner = TestRunner(sim, chip44, meter, library, aging, injector)
    return sim, chip44, meter, library, runner, injector


def test_start_moves_core_to_testing(rig):
    sim, chip, meter, library, runner, _ = rig
    core = chip.core(0)
    level = chip.vf_table.max_level
    session = runner.start(core, level)
    assert core.state is CoreState.TESTING
    assert core.level is level
    assert session.duration_us == pytest.approx(library.session_duration(level))
    assert runner.session_of(core) is session
    assert runner.stats.started == 1


def test_testing_core_burns_session_power(rig):
    sim, chip, meter, library, runner, _ = rig
    idle_power = meter.chip_power()
    runner.start(chip.core(0), chip.vf_table.max_level)
    assert meter.chip_power() > idle_power


def test_completion_restores_idle_and_credits(rig):
    sim, chip, meter, library, runner, _ = rig
    core = chip.core(0)
    core.stress_since_test = 5.0
    level = chip.vf_table[3]
    runner.start(core, level)
    sim.run()
    assert core.state is CoreState.IDLE
    assert core.tests_completed == 1
    assert core.stress_since_test == 0.0
    assert core.last_test_end == pytest.approx(library.session_duration(level))
    assert 3 in core.tested_levels
    assert core.level_last_test[3] == pytest.approx(core.last_test_end)
    assert runner.stats.completed == 1
    assert runner.stats.per_core_completed[0] == 1
    assert runner.stats.per_level_completed[3] == 1


def test_completion_restores_power_to_gated(rig):
    sim, chip, meter, library, runner, _ = rig
    before = meter.chip_power()
    runner.start(chip.core(0), chip.vf_table.max_level)
    sim.run()
    assert meter.chip_power() == pytest.approx(before)


def test_test_gap_recorded(rig):
    sim, chip, meter, library, runner, _ = rig
    core = chip.core(0)
    runner.start(core, chip.vf_table.max_level)
    sim.run()
    first_end = core.last_test_end
    sim.at(first_end + 100.0, runner.start, core, chip.vf_table.max_level)
    sim.run()
    assert len(runner.stats.test_gaps_us) == 2
    assert runner.stats.test_gaps_us[0] == pytest.approx(first_end)
    assert runner.stats.max_gap_us() >= runner.stats.mean_gap_us()


def test_abort_gives_no_credit(rig):
    sim, chip, meter, library, runner, _ = rig
    core = chip.core(0)
    core.stress_since_test = 5.0
    runner.start(core, chip.vf_table.max_level)
    sim.run(until=1.0)  # part-way through the session
    runner.abort(core)
    assert core.state is CoreState.IDLE
    assert core.tests_completed == 0
    assert core.stress_since_test == 5.0
    assert runner.stats.aborted == 1
    assert runner.stats.completed == 0
    # The cancelled finish event must not fire later.
    sim.run()
    assert runner.stats.completed == 0


def test_abort_without_session_raises(rig):
    _, chip, _, _, runner, _ = rig
    with pytest.raises(ValueError):
        runner.abort(chip.core(0))


def test_start_rejects_busy_or_owned_core(rig):
    sim, chip, _, _, runner, _ = rig
    busy = chip.core(0)
    busy.state = CoreState.BUSY
    with pytest.raises(ValueError):
        runner.start(busy, chip.vf_table.max_level)
    owned = chip.core(1)
    owned.owner_app = 9
    with pytest.raises(ValueError):
        runner.start(owned, chip.vf_table.max_level)


def test_detection_retires_core(rig):
    sim, chip, meter, library, runner, injector = rig
    from repro.aging.faults import FaultRecord

    core = chip.core(0)
    core.fault_present = True
    core.fault_injected_at = 0.0
    injector.records.append(
        FaultRecord(core_id=0, injected_at=0.0, manifest_level=0)
    )
    runner.start(core, chip.vf_table.max_level)
    # Force the coverage draw to succeed deterministically.
    injector.rng = random.Random(0)
    injector.rng.random = lambda: 0.0
    sim.run()
    assert core.state is CoreState.FAULTY
    assert core.fault_detected_at is not None
    assert runner.stats.detections == 1
    assert meter.core_power(core) == 0.0


def test_hooks_fire_on_completion(rig):
    sim, chip, _, _, runner, _ = rig
    seen = []
    runner.on_complete.append(lambda core, session: seen.append(core.core_id))
    runner.start(chip.core(2), chip.vf_table.max_level)
    sim.run()
    assert seen == [2]


def test_estimated_power_positive_and_monotonic(rig):
    _, chip, _, _, runner, _ = rig
    low = runner.estimated_power(chip.vf_table.min_level)
    high = runner.estimated_power(chip.vf_table.max_level)
    assert 0.0 < low < high


def test_concurrent_sessions_tracked(rig):
    sim, chip, _, _, runner, _ = rig
    runner.start(chip.core(0), chip.vf_table.max_level)
    runner.start(chip.core(1), chip.vf_table[2])
    assert len(runner.active_sessions()) == 2
    sim.run()
    assert runner.active_sessions() == []
    assert runner.stats.completed == 2


def test_low_level_test_takes_longer(rig):
    sim, chip, _, library, runner, _ = rig
    runner.start(chip.core(0), chip.vf_table.min_level)
    runner.start(chip.core(1), chip.vf_table.max_level)
    sessions = {s.core.core_id: s for s in runner.active_sessions()}
    assert sessions[0].duration_us > sessions[1].duration_us


# ----------------------------------------------------------------------
# Checkpointed (resumable) sessions
# ----------------------------------------------------------------------
@pytest.fixture
def ckpt_rig(sim, chip44):
    meter = PowerMeter(chip44)
    runner = TestRunner(
        sim, chip44, meter, default_library(),
        AgingModel(chip44.node), checkpointing=True,
    )
    return sim, chip44, runner


def test_checkpoint_resume_shortens_second_session(ckpt_rig):
    sim, chip, runner = ckpt_rig
    core = chip.core(0)
    level = chip.vf_table.max_level
    full = runner.library.session_duration(level)
    runner.start(core, level)
    sim.run(until=full / 2)
    runner.abort(core)
    resumed = runner.start(core, level)
    assert resumed.duration_us == pytest.approx(full / 2)
    assert runner.stats.resumed == 1


def test_checkpoint_only_valid_for_same_level(ckpt_rig):
    sim, chip, runner = ckpt_rig
    core = chip.core(0)
    top = chip.vf_table.max_level
    runner.start(core, top)
    sim.run(until=runner.library.session_duration(top) / 2)
    runner.abort(core)
    other = chip.vf_table[2]
    session = runner.start(core, other)
    assert session.duration_us == pytest.approx(
        runner.library.session_duration(other)
    )
    assert runner.stats.resumed == 0


def test_checkpoint_consumed_on_use(ckpt_rig):
    sim, chip, runner = ckpt_rig
    core = chip.core(0)
    level = chip.vf_table.max_level
    full = runner.library.session_duration(level)
    runner.start(core, level)
    sim.run(until=full / 2)
    runner.abort(core)
    runner.start(core, level)          # resumes, consumes checkpoint
    sim.run()                          # completes
    fresh = runner.start(core, level)  # no checkpoint left
    assert fresh.duration_us == pytest.approx(full)


def test_checkpoints_accumulate_across_aborts(ckpt_rig):
    sim, chip, runner = ckpt_rig
    core = chip.core(0)
    level = chip.vf_table.max_level
    full = runner.library.session_duration(level)
    runner.start(core, level)
    sim.run(until=full / 4)
    runner.abort(core)
    runner.start(core, level)
    sim.run(until=sim.now + full / 4)
    runner.abort(core)
    final = runner.start(core, level)
    assert final.duration_us == pytest.approx(full / 2)


def test_checkpointing_disabled_restarts_from_scratch(rig):
    sim, chip, meter, library, runner, _ = rig
    core = chip.core(0)
    level = chip.vf_table.max_level
    full = library.session_duration(level)
    runner.start(core, level)
    sim.run(until=full / 2)
    runner.abort(core)
    session = runner.start(core, level)
    assert session.duration_us == pytest.approx(full)
    assert runner.stats.resumed == 0

"""Differential pinning of the heterogeneity layer's degenerate path.

The contract (``docs/heterogeneity.md``): a config where every tile is
the ``std`` type under the baseline ``cmos`` model — in any spelling —
must produce ``result_digest``\\ s byte-identical to the engine from
*before* core types and technology models existed.  The digests in
``tests/goldens/hetero_goldens.json`` were frozen from that pre-layer
engine and are never regenerated casually, so these tests compare
today's engine against history, across every execution path:

* scalar ``run_system`` (all degenerate spellings),
* the lockstep batch engine,
* a pooled ``run_many(jobs=2)`` sweep,
* a cold+warm ``RunCache`` round trip,
* a served sweep through :class:`repro.serve.ServeEngine`.

A genuinely heterogeneous grid must *move* the digest (negative
control), and the journal stays byte-compatible: hetero platform keys
appear only for heterogeneous chips.
"""

from __future__ import annotations

import asyncio
import importlib.util
import os
from dataclasses import replace

import pytest

from repro.batch import result_digest, run_batch
from repro.cache import RunCache
from repro.core.system import run_system
from repro.experiments.parallel import run_many
from repro.obs.journal import Journal
from repro.serve import ServeEngine, SweepRequest
from repro.verify import replay_journal, verify_config

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _load_script(name):
    """Import a benchmarks/ script by path (they are not a package)."""
    path = os.path.join(REPO_ROOT, "benchmarks", name + ".py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


smoke = _load_script("hetero_smoke")
GOLDENS = smoke.load_goldens()


def _golden(name, seed):
    return GOLDENS[f"{name}@{seed}"]


# ----------------------------------------------------------------------
# Scalar path: every degenerate spelling of every golden workload
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(smoke.GOLDEN_BASES))
def test_scalar_degenerate_spellings_match_frozen_goldens(name):
    config = smoke.golden_configs()[name]
    want = _golden(name, config.seed)
    for variant in smoke.degenerate_spellings(config):
        assert result_digest(run_system(variant)) == want, (
            f"type_grid={variant.type_grid!r} tech_model="
            f"{variant.tech_model!r} moved the {name} digest"
        )


# ----------------------------------------------------------------------
# Batch, pooled, cached and served paths (hetero-spelled degenerate)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def degenerate_base():
    """g44_base with the heterogeneity layer explicitly engaged."""
    return replace(
        smoke.golden_configs()["g44_base"],
        type_grid=("std",),
        tech_model="cmos",
    )


def test_batch_lanes_match_frozen_goldens(degenerate_base):
    results = run_batch(degenerate_base, smoke.BATCH_SEEDS)
    for seed, result in zip(smoke.BATCH_SEEDS, results):
        assert result_digest(result) == _golden("g44_base", seed)


def test_pooled_run_many_matches_frozen_goldens(degenerate_base):
    sweep = [replace(degenerate_base, seed=s) for s in smoke.BATCH_SEEDS]
    for seed, result in zip(smoke.BATCH_SEEDS, run_many(sweep, jobs=2)):
        assert result_digest(result) == _golden("g44_base", seed)


def test_warm_cache_matches_frozen_goldens(degenerate_base, tmp_path):
    sweep = [replace(degenerate_base, seed=s) for s in smoke.BATCH_SEEDS]
    cache = RunCache(cache_dir=str(tmp_path / "cache"))
    run_many(sweep, None, cache=cache)
    warm = run_many(sweep, None, cache=cache)
    assert cache.stats.hits >= len(sweep)
    for seed, result in zip(smoke.BATCH_SEEDS, warm):
        assert result_digest(result) == _golden("g44_base", seed)


def test_served_sweep_matches_frozen_goldens():
    base = dict(smoke.GOLDEN_BASES["g44_base"])
    del base["seed"]
    base["type_grid"] = ["std"]
    base["tech_model"] = "cmos"

    async def body():
        engine = ServeEngine(jobs=0)
        await engine.start()
        try:
            request = SweepRequest.parse(
                {
                    "points": [{"seed": s} for s in smoke.BATCH_SEEDS],
                    "base": base,
                }
            )
            tickets = engine.submit(request)
            return await asyncio.gather(*[t.future for t in tickets])
        finally:
            await engine.drain(30.0)
            await engine.stop()

    payloads = asyncio.run(body())
    for seed, payload in zip(smoke.BATCH_SEEDS, payloads):
        assert payload.result_digest == _golden("g44_base", seed)


# ----------------------------------------------------------------------
# Negative control + journal compatibility
# ----------------------------------------------------------------------
def test_heterogeneous_grid_moves_the_digest(degenerate_base):
    hetero = replace(
        degenerate_base, type_grid=("io", "o3", "accel", "std") * 4
    )
    assert result_digest(run_system(hetero)) != _golden(
        "g44_base", hetero.seed
    )


def test_ntv_model_moves_the_digest(degenerate_base):
    ntv = replace(degenerate_base, tech_model="ntv")
    assert result_digest(run_system(ntv)) != _golden("g44_base", ntv.seed)


def test_journal_platform_keys_are_hetero_gated(degenerate_base):
    """Degenerate journals carry no hetero keys; hetero journals do —
    and both replay bit-exactly."""
    journal = Journal(level="info")
    _, checker = verify_config(degenerate_base, journal=journal)
    assert checker.ok
    (platform,) = [
        e for e in journal.events if e.type == "verify.platform"
    ]
    assert "tech_model" not in platform.data
    assert "core_types" not in platform.data
    assert replay_journal(list(journal.events)).ok

    hetero = replace(
        degenerate_base, type_grid=("io", "o3", "accel", "std") * 4
    )
    journal = Journal(level="info")
    _, checker = verify_config(hetero, journal=journal)
    assert checker.ok
    (platform,) = [
        e for e in journal.events if e.type == "verify.platform"
    ]
    assert platform.data["tech_model"] == "cmos"
    assert platform.data["core_types"] == list(hetero.type_grid)
    assert replay_journal(list(journal.events)).ok

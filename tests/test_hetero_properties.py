"""Property tests for the heterogeneity layer (hypothesis).

Analytic laws every :class:`CoreType` x :class:`TechnologyModel`
combination must satisfy, checked over randomized voltages,
frequencies, tile mixes and budgets:

* dynamic power is monotone in V and f (and leakage in V) for every
  type under both registered models;
* the dark-silicon fraction is a valid fraction in [0, 1], monotone
  non-increasing in the TDP budget, and zero when the budget covers
  the whole catalog's peak demand;
* an SBST library's detection profile is a CDF: within [0, 1] and
  non-decreasing in routine count, for any valid type scaling;
* ``type_grid`` / ``tech_model`` survive the config JSON round trip
  with their config digest intact.
"""

from __future__ import annotations

from dataclasses import replace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config_io import config_from_json, config_to_json
from repro.core.system import SystemConfig
from repro.obs.provenance import config_digest
from repro.platform.coretypes import CORE_TYPES, CoreType, get_core_type
from repro.platform.techmodel import TECHNOLOGY_MODELS, get_tech_model
from repro.platform.technology import TECHNOLOGY_NODES, get_node

TYPE_NAMES = sorted(n for n in ("std", "io", "o3", "accel"))
MODEL_NAMES = sorted(TECHNOLOGY_MODELS)
NODE_NAMES = sorted(TECHNOLOGY_NODES)

type_names = st.sampled_from(TYPE_NAMES)
model_names = st.sampled_from(MODEL_NAMES)
node_names = st.sampled_from(NODE_NAMES)
# Voltages span near-threshold to above-nominal across all nodes.
vdds = st.floats(min_value=0.45, max_value=1.3)
freqs = st.floats(min_value=50.0, max_value=4_000.0)
activities = st.floats(min_value=0.05, max_value=1.0)


# ----------------------------------------------------------------------
# Per-type power monotonicity under every model
# ----------------------------------------------------------------------
@settings(max_examples=150, deadline=None)
@given(model_names, node_names, type_names, vdds, vdds, freqs, activities)
def test_dynamic_power_monotone_in_vdd(model, node, tname, v1, v2, f, act):
    m = get_tech_model(model)
    n = get_node(node)
    t = get_core_type(tname)
    lo, hi = sorted((v1, v2))
    assert m.dynamic_power(n, t, lo, f, act) <= m.dynamic_power(
        n, t, hi, f, act
    )


@settings(max_examples=150, deadline=None)
@given(model_names, node_names, type_names, vdds, freqs, freqs, activities)
def test_dynamic_power_monotone_in_frequency(model, node, tname, v, f1, f2, act):
    m = get_tech_model(model)
    n = get_node(node)
    t = get_core_type(tname)
    lo, hi = sorted((f1, f2))
    assert m.dynamic_power(n, t, v, lo, act) <= m.dynamic_power(
        n, t, v, hi, act
    )


@settings(max_examples=150, deadline=None)
@given(model_names, node_names, type_names, vdds, vdds)
def test_leakage_power_monotone_in_vdd(model, node, tname, v1, v2):
    m = get_tech_model(model)
    n = get_node(node)
    t = get_core_type(tname)
    lo, hi = sorted((v1, v2))
    assert 0.0 <= m.leakage_power(n, t, lo) <= m.leakage_power(n, t, hi)


# ----------------------------------------------------------------------
# Dark fraction: valid, monotone in TDP, vanishes with enough budget
# ----------------------------------------------------------------------
tile_mixes = st.lists(
    st.tuples(type_names, st.integers(min_value=1, max_value=32)),
    min_size=1,
    max_size=4,
    unique_by=lambda pair: pair[0],
)
budgets = st.floats(min_value=0.5, max_value=500.0)


@settings(max_examples=150, deadline=None)
@given(model_names, node_names, tile_mixes, budgets, budgets)
def test_dark_fraction_valid_and_monotone_in_tdp(
    model, node, mix, tdp1, tdp2
):
    m = get_tech_model(model)
    n = get_node(node)
    counts = {get_core_type(name): count for name, count in mix}
    lo, hi = sorted((tdp1, tdp2))
    dark_lo = m.dark_fraction(n, counts, lo)
    dark_hi = m.dark_fraction(n, counts, hi)
    assert 0.0 <= dark_hi <= dark_lo <= 1.0
    # A budget covering the whole catalog's peak demand lights the chip.
    demand = sum(
        count * m.peak_core_power(n, ctype)
        for ctype, count in counts.items()
    )
    assert m.dark_fraction(n, counts, demand) == 0.0


# ----------------------------------------------------------------------
# SBST detection profile is a CDF under any valid type scaling
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(
    st.floats(min_value=0.1, max_value=3.0),
    st.floats(min_value=0.05, max_value=1.0),
)
def test_detection_profile_is_a_cdf(cycles_scale, detection_scale):
    from repro.testing.sbst import default_library

    ctype = CoreType(
        name="prop",
        description="hypothesis-generated scaling",
        sbst_cycles_scale=cycles_scale,
        detection_scale=detection_scale,
    )
    profile = default_library().scaled_for(ctype).detection_profile()
    assert profile, "profile must cover at least one routine"
    previous = 0.0
    for value in profile:
        assert 0.0 <= value <= 1.0
        assert value >= previous
        previous = value


# ----------------------------------------------------------------------
# Config round trip: type_grid / tech_model survive JSON and digests
# ----------------------------------------------------------------------
grids = st.one_of(
    st.just(()),
    st.lists(type_names, min_size=1, max_size=1).map(tuple),
    st.lists(type_names, min_size=4, max_size=4).map(tuple),
)


@settings(max_examples=100, deadline=None)
@given(grids, model_names, st.integers(min_value=0, max_value=10_000))
def test_type_grid_round_trips_through_json(grid, model, seed):
    config = SystemConfig(
        width=2, height=2, type_grid=grid, tech_model=model, seed=seed
    )
    restored = config_from_json(config_to_json(config))
    assert restored == config
    assert restored.type_grid == grid
    assert restored.tech_model == model
    assert config_digest(restored) == config_digest(config)


def test_distinct_grids_have_distinct_digests():
    base = SystemConfig(width=2, height=2)
    a = replace(base, type_grid=("io", "o3", "accel", "std"))
    b = replace(base, type_grid=("o3", "io", "accel", "std"))
    assert config_digest(a) != config_digest(b)
    assert config_digest(base) != config_digest(a)
    assert config_digest(base) != config_digest(
        replace(base, tech_model="ntv")
    )

"""Tests for SBST routine models."""

import pytest

from repro.platform.dvfs import build_vf_table
from repro.testing.sbst import SBSTLibrary, SBSTRoutine, default_library


@pytest.fixture
def table(node16):
    return build_vf_table(node16)


@pytest.fixture
def library():
    return SBSTLibrary(
        [
            SBSTRoutine("a", cycles=1000.0, power_factor=1.2, coverage=0.5),
            SBSTRoutine("b", cycles=3000.0, power_factor=0.8, coverage=0.5),
        ]
    )


def test_routine_duration_scales_inverse_frequency(table):
    routine = SBSTRoutine("r", cycles=7000.0)
    fast = routine.duration_at(table.max_level)
    slow = routine.duration_at(table.min_level)
    assert fast == pytest.approx(7000.0 / table.max_level.f_mhz)
    assert slow > fast


def test_routine_validation():
    with pytest.raises(ValueError):
        SBSTRoutine("r", cycles=0.0)
    with pytest.raises(ValueError):
        SBSTRoutine("r", cycles=10.0, power_factor=0.0)
    with pytest.raises(ValueError):
        SBSTRoutine("r", cycles=10.0, coverage=0.0)
    with pytest.raises(ValueError):
        SBSTRoutine("r", cycles=10.0, coverage=1.1)


def test_library_total_cycles(library):
    assert library.total_cycles == 4000.0


def test_library_session_duration(library, table):
    assert library.session_duration(table.max_level) == pytest.approx(
        4000.0 / table.max_level.f_mhz
    )


def test_library_power_factor_cycle_weighted(library):
    expected = (1000.0 * 1.2 + 3000.0 * 0.8) / 4000.0
    assert library.session_power_factor() == pytest.approx(expected)


def test_library_session_coverage_combines(library):
    assert library.session_coverage() == pytest.approx(1.0 - 0.5 * 0.5)


def test_library_session_power_positive(library, node16, table):
    assert library.session_power(node16, table.min_level) > 0.0
    assert library.session_power(node16, table.max_level) > library.session_power(
        node16, table.min_level
    )


def test_library_rejects_empty_and_duplicates():
    with pytest.raises(ValueError):
        SBSTLibrary([])
    with pytest.raises(ValueError):
        SBSTLibrary([SBSTRoutine("a", 1.0), SBSTRoutine("a", 2.0)])


def test_default_library_shape():
    lib = default_library()
    assert len(lib) == 5
    assert lib.total_cycles == pytest.approx(120_000.0)
    assert 0.0 < lib.session_coverage() < 1.0


def test_default_library_scales():
    assert default_library(2.0).total_cycles == pytest.approx(240_000.0)
    with pytest.raises(ValueError):
        default_library(0.0)


def test_default_library_duration_reasonable(table):
    """Session ~34 µs at 3.5 GHz nominal (order-of SBST program length)."""
    duration = default_library().session_duration(table.max_level)
    assert 20.0 < duration < 60.0

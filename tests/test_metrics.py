"""Tests for metric collection and report formatting."""

import pytest

from repro.metrics.collectors import MetricsCollector
from repro.metrics.report import format_series, format_table, sparkline
from repro.power.budget import PowerBudget
from repro.power.meter import PowerBreakdown
from repro.workload.application import ApplicationGraph, ApplicationInstance
from repro.workload.task import Task


@pytest.fixture
def collector():
    return MetricsCollector(PowerBudget(50.0))


def app_instance(app_id=1, arrival=0.0, ops=1000.0):
    graph = ApplicationGraph("a", [Task(0, ops=ops)], [])
    return ApplicationInstance(app_id, graph, arrival)


# ----------------------------------------------------------------------
# Collector
# ----------------------------------------------------------------------
def test_app_lifecycle_counters(collector):
    app = app_instance()
    collector.on_app_arrival(app, 0.0)
    collector.on_app_admitted(app, 5.0)
    app.start_time = 5.0
    collector.on_app_finished(app, 20.0)
    assert collector.apps_arrived == 1
    assert collector.apps_admitted == 1
    assert collector.apps_completed == 1
    record = collector.app_records[0]
    assert record.waiting_time == pytest.approx(5.0)
    assert record.turnaround == pytest.approx(20.0)


def test_task_and_ops_counters(collector):
    collector.on_task_finished(1000.0, 1.0)
    collector.on_task_finished(500.0, 2.0)
    assert collector.tasks_completed == 2
    assert collector.ops_completed == pytest.approx(1500.0)
    assert collector.throughput_ops_per_us(100.0) == pytest.approx(15.0)


def test_power_sampling_feeds_trace_and_audit(collector):
    collector.sample_power(0.0, PowerBreakdown(10.0, 1.0, 2.0, 0.5))
    collector.sample_power(10.0, PowerBreakdown(60.0, 1.0, 2.0, 0.0))
    assert collector.trace.last("power.total") == pytest.approx(63.0)
    assert collector.audit.violations == 1


def test_energy_and_share(collector):
    collector.sample_power(0.0, PowerBreakdown(workload=8.0, test=2.0, leakage=0.0, noc=0.0))
    collector.sample_power(100.0, PowerBreakdown(workload=0.0, test=0.0, leakage=0.0, noc=0.0))
    assert collector.energy_uj("test", 100.0) == pytest.approx(200.0)
    assert collector.test_power_share(100.0) == pytest.approx(0.2)
    assert collector.average_power(100.0) == pytest.approx(10.0)


def test_share_zero_when_no_energy(collector):
    assert collector.test_power_share(100.0) == 0.0


def test_mean_waiting_none_without_apps(collector):
    assert collector.mean_waiting_time() is None
    assert collector.mean_turnaround() is None


def test_apps_per_ms(collector):
    app = app_instance()
    app.start_time = 0.0
    collector.on_app_finished(app, 10.0)
    assert collector.apps_per_ms(2000.0) == pytest.approx(0.5)


def test_rate_rejects_bad_horizon(collector):
    with pytest.raises(ValueError):
        collector.throughput_ops_per_us(0.0)
    with pytest.raises(ValueError):
        collector.apps_per_ms(-1.0)


def test_count_sampling(collector):
    collector.sample_counts(0.0, busy=3, testing=1, idle=12, queued=2)
    assert collector.trace.last("cores.busy") == 3.0
    assert collector.trace.last("queue.length") == 2.0


def test_aborted_app_counted_separately(collector):
    """An app finishing without ever starting is aborted, not completed,
    and must not pollute the waiting/turnaround statistics."""
    ran = app_instance(app_id=1)
    collector.on_app_arrival(ran, 0.0)
    ran.start_time = 4.0
    collector.on_app_finished(ran, 10.0)

    never_ran = app_instance(app_id=2, arrival=1.0)
    collector.on_app_arrival(never_ran, 1.0)
    assert never_ran.start_time is None
    collector.on_app_finished(never_ran, 30.0)

    assert collector.apps_completed == 1
    assert collector.apps_aborted == 1
    assert len(collector.app_records) == 2
    aborted = [r for r in collector.app_records if r.aborted]
    assert [r.app_id for r in aborted] == [2]
    assert [r.app_id for r in collector.completed_records()] == [1]
    # Stats come from the completed app only: waiting 4, turnaround 10.
    assert collector.mean_waiting_time() == pytest.approx(4.0)
    assert collector.mean_turnaround() == pytest.approx(10.0)
    assert collector.mean_waiting_by_class() == {
        "best-effort": pytest.approx(4.0)
    }


def test_only_aborted_apps_means_no_stats(collector):
    never_ran = app_instance()
    collector.on_app_finished(never_ran, 5.0)
    assert collector.apps_aborted == 1
    assert collector.apps_completed == 0
    assert collector.mean_waiting_time() is None
    assert collector.mean_turnaround() is None
    assert collector.mean_waiting_by_class() == {}


# ----------------------------------------------------------------------
# Report formatting
# ----------------------------------------------------------------------
def test_format_table_alignment():
    out = format_table(["name", "value"], [["a", 1.0], ["bb", 22.5]])
    lines = out.splitlines()
    assert lines[0].startswith("name")
    assert "-" in lines[1]
    assert lines[2].endswith("1.000")


def test_format_table_title_and_precision():
    out = format_table(["x"], [[1.23456]], precision=1, title="T")
    assert out.splitlines()[0] == "T"
    assert "1.2" in out


def test_format_table_validates_shapes():
    with pytest.raises(ValueError):
        format_table([], [])
    with pytest.raises(ValueError):
        format_table(["a"], [[1, 2]])


def test_format_series_downsamples():
    xs = list(range(100))
    ys = [float(x) for x in xs]
    out = format_series("s", xs, ys, max_points=10)
    # Header + separator + at most 10 data rows + title.
    assert len(out.splitlines()) <= 13


def test_format_series_length_mismatch():
    with pytest.raises(ValueError):
        format_series("s", [1, 2], [1.0])


def test_sparkline_shape():
    line = sparkline([0.0, 0.5, 1.0])
    assert len(line) == 3
    assert line[0] == "▁"
    assert line[-1] == "█"


def test_sparkline_flat_series():
    assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"


def test_sparkline_empty():
    assert sparkline([]) == ""


def test_sparkline_downsamples_to_width():
    assert len(sparkline(list(range(500)), width=60)) == 60

"""Tests for the MapPro-style proactive mapper."""

import pytest

from repro.mapping.base import MappingContext
from repro.mapping.mappro import MapProMapper
from repro.noc.topology import Mesh
from repro.platform.chip import Chip
from repro.workload.application import ApplicationGraph, ApplicationInstance
from repro.workload.task import Edge, Task


@pytest.fixture
def mapper():
    return MapProMapper()


def make_ctx(chip, available=None):
    mesh = Mesh(chip.width, chip.height)
    cores = available if available is not None else chip.free_cores()
    return MappingContext(chip, mesh, 0.0, cores)


def chain_app(n):
    tasks = [Task(i, 100.0) for i in range(n)]
    edges = [Edge(i, i + 1, 10.0) for i in range(n - 1)]
    return ApplicationInstance(1, ApplicationGraph("chain", tasks, edges), 0.0)


def test_radius_for_sizes(mapper):
    assert mapper.radius_for(1) == 1
    assert mapper.radius_for(9) == 1
    assert mapper.radius_for(10) == 2
    assert mapper.radius_for(25) == 2
    assert mapper.radius_for(26) == 3


def test_gamma_validation():
    with pytest.raises(ValueError):
        MapProMapper(gamma=0.0)
    with pytest.raises(ValueError):
        MapProMapper(gamma=1.0)


def test_potential_highest_at_center_of_free_chip(mapper, chip88):
    ctx = make_ctx(chip88)
    field = mapper.potential_field(ctx, n_tasks=9)
    # Centre nodes beat corner nodes on a fully free mesh.
    corner = chip88.core_at(0, 0).core_id
    center = chip88.core_at(3, 3).core_id
    assert field[center] > field[corner]


def test_potential_self_contribution_is_one(mapper, chip44):
    only = [chip44.core(5)]
    ctx = make_ctx(chip44, available=only)
    assert mapper.potential(ctx, chip44.core(5), radius=1) == pytest.approx(1.0)


def test_potential_discounts_by_distance(mapper, chip44):
    cores = [chip44.core_at(0, 0), chip44.core_at(1, 0), chip44.core_at(3, 0)]
    ctx = make_ctx(chip44, available=cores)
    p = mapper.potential(ctx, chip44.core_at(0, 0), radius=2)
    expected = 1.0 + mapper.gamma ** 1 + mapper.gamma ** 3
    assert p == pytest.approx(expected)


def test_prefers_dense_region_over_fragmented(mapper, chip88):
    """A compact 3x3 free block beats an equal-area scattered set."""
    dense = [
        chip88.core_at(x, y) for x in (0, 1, 2) for y in (0, 1, 2)
    ]
    scattered = [
        chip88.core_at(x, y)
        for (x, y) in [(5, 0), (7, 2), (5, 4), (7, 6), (4, 7), (6, 3), (4, 2), (7, 0), (5, 6)]
    ]
    ctx = make_ctx(chip88, available=dense + scattered)
    app = chain_app(9)
    placement = mapper.map_application(app, ctx)
    dense_ids = {c.core_id for c in dense}
    chosen = set(placement.values())
    assert len(chosen & dense_ids) >= 7  # lands (almost) entirely in the block


def test_placement_valid_and_injective(mapper, chip88):
    app = chain_app(6)
    ctx = make_ctx(chip88)
    placement = mapper.map_application(app, ctx)
    assert set(placement) == set(app.graph.tasks)
    assert len(set(placement.values())) == 6
    assert set(placement.values()) <= ctx.available_ids


def test_none_when_insufficient(mapper, chip44):
    app = chain_app(6)
    ctx = make_ctx(chip44, available=chip44.free_cores()[:3])
    assert mapper.map_application(app, ctx) is None


def test_none_when_empty(mapper, chip44):
    app = chain_app(1)
    ctx = make_ctx(chip44, available=[])
    assert mapper.map_application(app, ctx) is None


def test_system_accepts_mappro():
    from repro.core.system import SystemConfig, run_system

    result = run_system(
        SystemConfig(mapper="mappro", horizon_us=5_000.0, seed=3)
    )
    assert result.mapper_name == "mappro"
    assert result.metrics.apps_completed > 0

"""Tests for the chip (mesh of cores)."""

import pytest

from repro.platform.chip import Chip
from repro.platform.core import CoreState
from repro.platform.technology import get_node


def test_build_dimensions(chip44):
    assert len(chip44) == 16
    assert chip44.width == 4 and chip44.height == 4


def test_core_ids_row_major(chip44):
    assert chip44.core_at(0, 0).core_id == 0
    assert chip44.core_at(3, 0).core_id == 3
    assert chip44.core_at(0, 1).core_id == 4
    assert chip44.core_at(3, 3).core_id == 15


def test_core_lookup_by_id(chip44):
    core = chip44.core(7)
    assert (core.x, core.y) == (3, 1)


def test_core_lookup_out_of_range(chip44):
    with pytest.raises(IndexError):
        chip44.core(16)
    with pytest.raises(IndexError):
        chip44.core_at(4, 0)


def test_neighbors_interior(chip44):
    core = chip44.core_at(1, 1)
    ids = {c.core_id for c in chip44.neighbors(core)}
    assert ids == {
        chip44.core_at(2, 1).core_id,
        chip44.core_at(0, 1).core_id,
        chip44.core_at(1, 2).core_id,
        chip44.core_at(1, 0).core_id,
    }


def test_neighbors_corner(chip44):
    core = chip44.core_at(0, 0)
    assert len(chip44.neighbors(core)) == 2


def test_all_cores_start_idle_at_nominal(chip44):
    for core in chip44:
        assert core.state is CoreState.IDLE
        assert core.level.index == len(chip44.vf_table) - 1


def test_state_queries(chip44):
    chip44.core(0).state = CoreState.BUSY
    chip44.core(1).state = CoreState.TESTING
    chip44.core(2).state = CoreState.FAULTY
    assert [c.core_id for c in chip44.busy_cores()] == [0]
    assert [c.core_id for c in chip44.testing_cores()] == [1]
    assert len(chip44.idle_cores()) == 13
    assert len(chip44.healthy_cores()) == 15


def test_free_cores_excludes_owned(chip44):
    chip44.core(0).owner_app = 1
    free = chip44.free_cores()
    assert chip44.core(0) not in free
    assert len(free) == 15


def test_lit_fraction_matches_node(chip44):
    node = get_node("16nm")
    assert chip44.lit_fraction() == pytest.approx(
        node.lit_fraction(16, 20.0)
    )


def test_build_rejects_bad_mesh():
    with pytest.raises(ValueError):
        Chip.build(0, 4)


def test_build_rejects_bad_tdp():
    with pytest.raises(ValueError):
        Chip.build(2, 2, tdp_w=-1.0)


def test_build_unknown_node():
    with pytest.raises(KeyError):
        Chip.build(2, 2, node_name="10nm")

"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import PRIORITY_CONTROL, PRIORITY_EARLY, PRIORITY_NORMAL


def test_events_fire_in_time_order(sim):
    log = []
    sim.at(5.0, log.append, "b")
    sim.at(1.0, log.append, "a")
    sim.at(9.0, log.append, "c")
    sim.run()
    assert log == ["a", "b", "c"]


def test_clock_advances_to_event_times(sim):
    times = []
    sim.at(2.5, lambda: times.append(sim.now))
    sim.at(7.0, lambda: times.append(sim.now))
    sim.run()
    assert times == [2.5, 7.0]


def test_schedule_is_relative_to_now(sim):
    seen = []
    def chain():
        seen.append(sim.now)
        if len(seen) < 3:
            sim.schedule(10.0, chain)
    sim.schedule(10.0, chain)
    sim.run()
    assert seen == [10.0, 20.0, 30.0]


def test_same_time_events_fire_in_scheduling_order(sim):
    log = []
    for tag in ("first", "second", "third"):
        sim.at(4.0, log.append, tag)
    sim.run()
    assert log == ["first", "second", "third"]


def test_priority_overrides_insertion_order_at_same_time(sim):
    log = []
    sim.at(1.0, log.append, "control", priority=PRIORITY_CONTROL)
    sim.at(1.0, log.append, "normal", priority=PRIORITY_NORMAL)
    sim.at(1.0, log.append, "early", priority=PRIORITY_EARLY)
    sim.run()
    assert log == ["early", "normal", "control"]


def test_run_until_stops_the_clock_at_horizon(sim):
    log = []
    sim.at(5.0, log.append, "in")
    sim.at(15.0, log.append, "out")
    end = sim.run(until=10.0)
    assert log == ["in"]
    assert end == 10.0
    assert sim.now == 10.0


def test_run_until_leaves_future_events_pending(sim):
    sim.at(15.0, lambda: None)
    sim.run(until=10.0)
    assert sim.pending() == 1
    assert sim.peek() == 15.0


def test_cancelled_event_does_not_fire(sim):
    log = []
    event = sim.at(1.0, log.append, "x")
    event.cancel()
    sim.run()
    assert log == []


def test_cancel_then_peek_skips_cancelled(sim):
    first = sim.at(1.0, lambda: None)
    sim.at(2.0, lambda: None)
    first.cancel()
    assert sim.peek() == 2.0


def test_scheduling_in_the_past_raises(sim):
    sim.at(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(1.0, lambda: None)


def test_negative_delay_raises(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_every_fires_periodically(sim):
    ticks = []
    sim.every(10.0, lambda: ticks.append(sim.now))
    sim.run(until=45.0)
    assert ticks == [10.0, 20.0, 30.0, 40.0]


def test_every_with_phase_shifts_first_tick(sim):
    ticks = []
    sim.every(10.0, lambda: ticks.append(sim.now), phase=3.0)
    sim.run(until=35.0)
    assert ticks == [13.0, 23.0, 33.0]


def test_every_rejects_nonpositive_period(sim):
    with pytest.raises(SimulationError):
        sim.every(0.0, lambda: None)


def test_stop_halts_the_loop(sim):
    log = []
    def stopper():
        log.append(sim.now)
        sim.stop()
    sim.at(1.0, stopper)
    sim.at(2.0, log.append, 2.0)
    sim.run()
    assert log == [1.0]


def test_events_fired_counter(sim):
    for t in (1.0, 2.0, 3.0):
        sim.at(t, lambda: None)
    sim.run()
    assert sim.events_fired == 3


def test_events_scheduled_during_run_execute(sim):
    log = []
    sim.at(1.0, lambda: sim.schedule(1.0, log.append, "child"))
    sim.run()
    assert log == ["child"]


def test_run_is_not_reentrant(sim):
    def nested():
        with pytest.raises(SimulationError):
            sim.run()
    sim.at(1.0, nested)
    sim.run()


def test_run_with_horizon_before_any_event(sim):
    sim.at(100.0, lambda: None)
    assert sim.run(until=50.0) == 50.0


def test_empty_run_returns_current_time(sim):
    assert sim.run() == 0.0

"""Tests for chip power metering."""

import pytest

from repro.platform.core import CoreState
from repro.power.meter import PowerMeter


@pytest.fixture
def meter(chip44):
    return PowerMeter(chip44)


def test_all_idle_chip_only_gated_leakage(chip44, meter):
    b = meter.breakdown()
    assert b.workload == 0.0
    assert b.test == 0.0
    assert b.noc == 0.0
    per_core_gated = (
        chip44.node.leakage_power(chip44.vf_table.max_level.vdd)
        * meter.gated_leak_fraction
    )
    assert b.leakage == pytest.approx(16 * per_core_gated)


def test_busy_core_adds_dynamic_power(chip44, meter):
    core = chip44.core(0)
    core.state = CoreState.BUSY
    level = core.level
    b = meter.breakdown()
    assert b.workload == pytest.approx(
        chip44.node.dynamic_power(level.vdd, level.f_mhz, 1.0)
    )


def test_testing_core_counts_in_test_channel(chip44, meter):
    core = chip44.core(0)
    core.state = CoreState.TESTING
    b = meter.breakdown()
    assert b.test > 0.0
    assert b.workload == 0.0


def test_activity_factor_scales_dynamic(chip44, meter):
    core = chip44.core(0)
    core.state = CoreState.BUSY
    full = meter.core_dynamic(core)
    meter.set_core_activity(core, 0.5)
    assert meter.core_dynamic(core) == pytest.approx(0.5 * full)
    meter.set_core_activity(core, None)
    assert meter.core_dynamic(core) == pytest.approx(full)


def test_negative_activity_rejected(chip44, meter):
    with pytest.raises(ValueError):
        meter.set_core_activity(chip44.core(0), -0.5)


def test_idle_core_has_no_dynamic(chip44, meter):
    assert meter.core_dynamic(chip44.core(3)) == 0.0


def test_faulty_core_fully_dark(chip44, meter):
    core = chip44.core(0)
    core.state = CoreState.FAULTY
    assert meter.core_power(core) == 0.0


def test_busy_core_full_leakage(chip44, meter):
    core = chip44.core(0)
    core.state = CoreState.BUSY
    assert meter.core_leakage(core) == pytest.approx(
        chip44.node.leakage_power(core.level.vdd)
    )


def test_noc_power_add_remove(chip44, meter):
    meter.add_noc_power(2.5)
    assert meter.breakdown().noc == 2.5
    meter.remove_noc_power(2.5)
    assert meter.breakdown().noc == 0.0


def test_noc_power_negative_guard(meter):
    meter.add_noc_power(1.0)
    with pytest.raises(ValueError):
        meter.remove_noc_power(2.0)


def test_noc_power_float_drift_tolerated(meter):
    meter.add_noc_power(1.0)
    meter.remove_noc_power(1.0 + 1e-9)
    assert meter.noc_power == 0.0


def test_total_is_channel_sum(chip44, meter):
    chip44.core(0).state = CoreState.BUSY
    chip44.core(1).state = CoreState.TESTING
    meter.add_noc_power(0.7)
    b = meter.breakdown()
    assert b.total == pytest.approx(b.workload + b.test + b.leakage + b.noc)
    assert meter.chip_power() == pytest.approx(b.total)


def test_headroom(chip44, meter):
    assert meter.headroom(100.0) == pytest.approx(100.0 - meter.chip_power())


def test_predicted_delta_matches_actual_switch(chip44, meter):
    core = chip44.core(0)
    core.state = CoreState.BUSY
    low = chip44.vf_table[2]
    delta = meter.predicted_delta(core, low)
    before = meter.chip_power()
    core.level = low
    after = meter.chip_power()
    assert after - before == pytest.approx(delta)


def test_added_power_if_busy_matches_transition(chip44, meter):
    core = chip44.core(0)
    level = chip44.vf_table[5]
    added = meter.added_power_if_busy(core, level, activity=0.8)
    before = meter.chip_power()
    core.state = CoreState.BUSY
    core.level = level
    meter.set_core_activity(core, 0.8)
    after = meter.chip_power()
    assert after - before == pytest.approx(added)


def test_gated_fraction_validation(chip44):
    with pytest.raises(ValueError):
        PowerMeter(chip44, gated_leak_fraction=1.5)

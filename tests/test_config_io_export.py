"""Tests for config serialisation and CSV/JSON export."""

import json

import pytest

from repro.core.config_io import (
    config_from_dict,
    config_from_json,
    config_to_dict,
    config_to_json,
    load_config,
    save_config,
)
from repro.core.criticality import CriticalityParameters
from repro.core.system import SystemConfig
from repro.metrics.export import (
    rows_to_csv,
    series_to_csv,
    summary_to_json,
    trace_to_csv,
    write_text,
)
from repro.sim.trace import Trace


# ----------------------------------------------------------------------
# Config round-trip
# ----------------------------------------------------------------------
def test_default_config_roundtrip():
    cfg = SystemConfig()
    assert config_from_dict(config_to_dict(cfg)) == cfg


def test_customised_config_roundtrip():
    cfg = SystemConfig(
        width=6,
        height=6,
        node_name="22nm",
        tdp_w=55.0,
        seed=99,
        mapper="test-aware",
        profile_names=("small", "large"),
        profile_weights=(0.5, 0.5),
        criticality=CriticalityParameters(stress_weight=0.9, time_weight=0.1),
        thermal_enabled=True,
        variation_enabled=True,
    )
    again = config_from_dict(config_to_dict(cfg))
    assert again == cfg
    assert isinstance(again.criticality, CriticalityParameters)
    assert isinstance(again.profile_names, tuple)


def test_json_roundtrip():
    cfg = SystemConfig(seed=7, tdp_w=42.0)
    text = config_to_json(cfg)
    json.loads(text)  # valid JSON
    assert config_from_json(text) == cfg


def test_unknown_key_rejected():
    data = config_to_dict(SystemConfig())
    data["tpd_w"] = 50.0  # typo
    with pytest.raises(ValueError, match="tpd_w"):
        config_from_dict(data)


def test_validation_reruns_on_load():
    data = config_to_dict(SystemConfig())
    data["horizon_us"] = -1.0
    with pytest.raises(ValueError):
        config_from_dict(data)


def test_non_object_json_rejected():
    with pytest.raises(ValueError):
        config_from_json("[1, 2, 3]")


def test_file_roundtrip(tmp_path):
    cfg = SystemConfig(seed=123)
    path = tmp_path / "cfg.json"
    save_config(cfg, str(path))
    assert load_config(str(path)) == cfg


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------
@pytest.fixture
def trace():
    t = Trace()
    t.record("a", 0.0, 1.0)
    t.record("a", 10.0, 2.0)
    t.record("b", 5.0, 7.0)
    return t


def test_trace_to_csv_union_grid(trace):
    csv_text = trace_to_csv(trace)
    lines = csv_text.strip().splitlines()
    assert lines[0] == "time_us,a,b"
    assert len(lines) == 4  # header + t in {0, 5, 10}
    assert lines[2] == "5.0,1.0,7.0"


def test_trace_to_csv_regular_grid(trace):
    csv_text = trace_to_csv(trace, grid_step=5.0, t_end=10.0)
    lines = csv_text.strip().splitlines()
    assert len(lines) == 4


def test_trace_to_csv_selected_names(trace):
    csv_text = trace_to_csv(trace, names=["b"])
    assert csv_text.splitlines()[0] == "time_us,b"


def test_trace_to_csv_unknown_name(trace):
    with pytest.raises(KeyError):
        trace_to_csv(trace, names=["missing"])


def test_trace_to_csv_grid_requires_end(trace):
    with pytest.raises(ValueError):
        trace_to_csv(trace, grid_step=5.0)
    with pytest.raises(ValueError):
        trace_to_csv(trace, grid_step=0.0, t_end=10.0)


def test_series_to_csv():
    text = series_to_csv({"x": [1.0, 2.0], "y": [3.0, 4.0]})
    lines = text.strip().splitlines()
    assert lines[0] == "x,y"
    assert lines[1] == "1.0,3.0"


def test_series_to_csv_validation():
    with pytest.raises(ValueError):
        series_to_csv({})
    with pytest.raises(ValueError):
        series_to_csv({"x": [1.0], "y": [1.0, 2.0]})


def test_rows_to_csv():
    text = rows_to_csv(["name", "v"], [["a", 1], ["b", 2]])
    assert text.strip().splitlines() == ["name,v", "a,1", "b,2"]


def test_rows_to_csv_validation():
    with pytest.raises(ValueError):
        rows_to_csv([], [])
    with pytest.raises(ValueError):
        rows_to_csv(["a"], [[1, 2]])


def test_summary_to_json():
    text = summary_to_json({"b": 2.0, "a": 1.0})
    data = json.loads(text)
    assert data == {"a": 1.0, "b": 2.0}


def test_write_text(tmp_path):
    path = tmp_path / "out.csv"
    write_text(str(path), "hello")
    assert path.read_text() == "hello"

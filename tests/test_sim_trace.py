"""Unit and property tests for the step-function trace recorder."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.trace import Trace


@pytest.fixture
def trace():
    t = Trace()
    t.record("p", 0.0, 2.0)
    t.record("p", 10.0, 4.0)
    t.record("p", 20.0, 1.0)
    return t


def test_series_roundtrip(trace):
    times, values = trace.series("p")
    assert times == [0.0, 10.0, 20.0]
    assert values == [2.0, 4.0, 1.0]


def test_series_returns_copies(trace):
    times, _ = trace.series("p")
    times.append(99.0)
    assert trace.series("p")[0] == [0.0, 10.0, 20.0]


def test_unknown_series_raises(trace):
    with pytest.raises(KeyError):
        trace.series("missing")


def test_last_value(trace):
    assert trace.last("p") == 1.0
    assert trace.last("missing", default=-1.0) == -1.0


def test_value_at_steps(trace):
    assert trace.value_at("p", 0.0) == 2.0
    assert trace.value_at("p", 9.999) == 2.0
    assert trace.value_at("p", 10.0) == 4.0
    assert trace.value_at("p", 100.0) == 1.0


def test_value_at_before_first_record_uses_default(trace):
    t = Trace()
    t.record("q", 5.0, 3.0)
    assert t.value_at("q", 1.0, default=7.0) == 7.0


def test_same_time_record_overwrites(trace):
    trace.record("p", 20.0, 9.0)
    assert trace.last("p") == 9.0
    assert len(trace.series("p")[0]) == 3


def test_non_monotonic_record_raises(trace):
    with pytest.raises(ValueError):
        trace.record("p", 5.0, 1.0)


def test_integral_full_window(trace):
    # 2*10 + 4*10 + 1*10 over [0, 30]
    assert trace.integral("p", 0.0, 30.0) == pytest.approx(70.0)


def test_integral_partial_window(trace):
    # [5, 15]: 2*5 + 4*5
    assert trace.integral("p", 5.0, 15.0) == pytest.approx(30.0)


def test_integral_of_missing_series_is_zero(trace):
    assert trace.integral("missing", 0.0, 10.0) == 0.0


def test_integral_rejects_reversed_interval(trace):
    with pytest.raises(ValueError):
        trace.integral("p", 10.0, 5.0)


def test_time_average(trace):
    assert trace.time_average("p", 0.0, 30.0) == pytest.approx(70.0 / 30.0)


def test_time_average_rejects_empty_interval(trace):
    with pytest.raises(ValueError):
        trace.time_average("p", 5.0, 5.0)


def test_maximum(trace):
    assert trace.maximum("p") == 4.0
    assert trace.maximum("missing", default=-2.0) == -2.0


def test_increment_builds_counter():
    t = Trace()
    t.increment("n", 1.0, 2.0)
    t.increment("n", 2.0, 3.0)
    assert t.last("n") == 5.0


def test_resample_on_grid(trace):
    assert trace.resample("p", [0.0, 5.0, 10.0, 25.0]) == [2.0, 2.0, 4.0, 1.0]


def test_merge_names_sums_pointwise():
    t = Trace()
    t.record("a", 0.0, 1.0)
    t.record("a", 10.0, 2.0)
    t.record("b", 5.0, 10.0)
    t.merge_names(["a", "b"], "sum")
    assert t.value_at("sum", 0.0) == 1.0
    assert t.value_at("sum", 5.0) == 11.0
    assert t.value_at("sum", 10.0) == 12.0


def test_names_sorted(trace):
    trace.record("a", 0.0, 1.0)
    assert trace.names() == ["a", "p"]


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),
            st.floats(min_value=-50.0, max_value=50.0),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_integral_splits_additively(points):
    """integral(0, T) == integral(0, m) + integral(m, T) for any midpoint."""
    trace = Trace()
    for t, v in sorted(points, key=lambda p: p[0]):
        trace.record("s", t, v)
    total = trace.integral("s", 0.0, 100.0)
    mid = 37.5
    split = trace.integral("s", 0.0, mid) + trace.integral("s", mid, 100.0)
    assert split == pytest.approx(total, abs=1e-6)


# ----------------------------------------------------------------------
# Equivalence with the pre-optimisation reference implementations
# ----------------------------------------------------------------------
def _integral_reference(trace, name, t0, t1):
    """The original full-scan segment walk, kept as the test oracle."""
    if name not in trace._times:
        return 0.0
    times = trace._times[name]
    values = trace._values[name]
    total = 0.0
    n = len(times)
    for i in range(n):
        start = times[i]
        end = times[i + 1] if i + 1 < n else t1
        lo = max(start, t0)
        hi = min(end, t1)
        if hi > lo:
            total += values[i] * (hi - lo)
    return total


def _merge_reference(trace, names, out):
    """The original value_at-per-grid-point merge, kept as the test oracle."""
    grid = sorted(
        {t for n in names if n in trace._times for t in trace._times[n]}
    )
    merged = []
    for t in grid:
        merged.append((t, sum(trace.value_at(n, t) for n in names)))
    return merged


_series_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
    ),
    min_size=0,
    max_size=25,
)


@given(
    points=_series_strategy,
    t0=st.floats(min_value=-10.0, max_value=110.0),
    width=st.floats(min_value=0.0, max_value=120.0),
)
def test_integral_matches_full_scan_reference(points, t0, width):
    trace = Trace()
    for t, v in sorted(points, key=lambda p: p[0]):
        trace.record("s", t, v)
    t1 = t0 + width
    assert trace.integral("s", t0, t1) == _integral_reference(
        trace, "s", t0, t1
    )


@given(
    series_a=_series_strategy,
    series_b=_series_strategy,
    series_c=_series_strategy,
    include_missing=st.booleans(),
)
def test_merge_names_matches_value_at_reference(
    series_a, series_b, series_c, include_missing
):
    trace = Trace()
    for name, points in (("a", series_a), ("b", series_b), ("c", series_c)):
        for t, v in sorted(points, key=lambda p: p[0]):
            trace.record(name, t, v)
    names = ["a", "b", "c"] + (["absent"] if include_missing else [])
    expected = _merge_reference(trace, names, "sum")
    trace.merge_names(names, "sum")
    if not expected:
        assert "sum" not in trace.names()
        return
    times, values = trace.series("sum")
    # Bit-exact, not approximate: the one-pass merge must add the same
    # floats in the same order as the naive per-point sum.
    assert list(zip(times, values)) == expected


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),
            st.floats(min_value=0.0, max_value=50.0),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_time_average_bounded_by_extremes(points):
    trace = Trace()
    for t, v in sorted(points, key=lambda p: p[0]):
        trace.record("s", t, v)
    avg = trace.time_average("s", 0.0, 200.0)
    _, values = trace.series("s")
    # Value before the first record contributes 0, so only the upper bound
    # is guaranteed in general.
    assert avg <= max(values) + 1e-9
    assert avg >= 0.0

"""Integration tests: full simulations of the wired system.

These use short horizons and the small defaults so the whole file runs in
a few seconds, but exercise every subsystem together: arrivals → mapping →
execution → power management → test scheduling → metrics.
"""

from dataclasses import replace

import pytest

from repro.core.system import ManycoreSystem, SystemConfig, run_system
from repro.platform.core import CoreState

QUICK = SystemConfig(horizon_us=15_000.0, seed=7, arrival_rate_per_ms=8.0)


@pytest.fixture(scope="module")
def quick_result():
    return run_system(QUICK)


# ----------------------------------------------------------------------
# Conservation and sanity invariants
# ----------------------------------------------------------------------
def test_apps_flow_conservation(quick_result):
    m = quick_result.metrics
    assert m.apps_arrived >= m.apps_admitted >= m.apps_completed > 0


def test_tasks_completed_matches_app_records(quick_result):
    m = quick_result.metrics
    tasks_of_completed = sum(r.n_tasks for r in m.app_records)
    assert m.tasks_completed >= tasks_of_completed  # in-flight apps add more


def test_ops_completed_at_least_completed_apps_ops(quick_result):
    m = quick_result.metrics
    ops_of_completed = sum(r.total_ops for r in m.app_records)
    assert m.ops_completed >= ops_of_completed - 1e-6


def test_waiting_times_non_negative(quick_result):
    assert all(r.waiting_time >= 0 for r in quick_result.metrics.app_records)
    assert all(
        r.turnaround >= r.waiting_time for r in quick_result.metrics.app_records
    )


def test_tests_ran_and_power_spent(quick_result):
    assert quick_result.tests_completed > 0
    assert quick_result.test_power_share > 0.0


def test_proposed_scheduler_never_violates_budget(quick_result):
    assert quick_result.metrics.audit.violation_rate == 0.0


def test_per_core_tallies_match_totals(quick_result):
    assert sum(quick_result.per_core_tests.values()) == quick_result.tests_completed
    assert (
        sum(quick_result.per_level_tests.values()) == quick_result.tests_completed
    )


def test_summary_keys_stable(quick_result):
    summary = quick_result.summary()
    expected = {
        "apps_completed", "tasks_completed", "throughput_ops_per_us",
        "mean_waiting_us", "avg_power_w", "budget_violation_rate",
        "tests_completed", "tests_aborted", "test_power_share",
        "faults_injected", "faults_detected",
    }
    assert set(summary) == expected


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_same_seed_bit_identical():
    a = run_system(QUICK)
    b = run_system(QUICK)
    assert a.summary() == b.summary()
    assert a.events_fired == b.events_fired


def test_different_seed_differs():
    a = run_system(QUICK)
    b = run_system(replace(QUICK, seed=8))
    assert a.summary() != b.summary()


def test_workload_identical_across_test_policies():
    """Paired-comparison guarantee: arrivals don't depend on the policy."""
    a = ManycoreSystem(replace(QUICK, test_policy="none")).generate_arrivals()
    b = ManycoreSystem(replace(QUICK, test_policy="unaware")).generate_arrivals()
    assert [x.time for x in a] == [x.time for x in b]
    assert [len(x.graph) for x in a] == [len(x.graph) for x in b]


# ----------------------------------------------------------------------
# Policy wiring
# ----------------------------------------------------------------------
@pytest.mark.parametrize("policy", ["none", "unaware", "round-robin", "power-aware"])
def test_all_test_policies_run(policy):
    result = run_system(replace(QUICK, horizon_us=5_000.0, test_policy=policy))
    assert result.scheduler_name == policy
    if policy == "none":
        assert result.tests_completed == 0


@pytest.mark.parametrize("policy", ["pid", "tsp", "naive", "none", "worst-case"])
def test_all_power_policies_run(policy):
    config = replace(
        QUICK,
        horizon_us=5_000.0,
        power_policy=policy,
        profile_names=("small",),
        profile_weights=(1.0,),
    )
    result = run_system(config)
    assert result.power_policy_name == policy
    assert result.metrics.apps_completed > 0


@pytest.mark.parametrize(
    "mapper", ["contiguous", "scatter", "random", "mappro", "test-aware"]
)
def test_all_mappers_run(mapper):
    result = run_system(replace(QUICK, horizon_us=5_000.0, mapper=mapper))
    assert result.mapper_name == mapper
    assert result.metrics.apps_completed > 0


def test_unknown_policy_names_raise():
    with pytest.raises(ValueError):
        run_system(replace(QUICK, mapper="bogus"))
    with pytest.raises(ValueError):
        run_system(replace(QUICK, test_policy="bogus"))
    with pytest.raises(ValueError):
        run_system(replace(QUICK, power_policy="bogus"))


def test_config_validation():
    with pytest.raises(ValueError):
        SystemConfig(horizon_us=0.0)
    with pytest.raises(ValueError):
        SystemConfig(profile_names=("small",), profile_weights=(1.0, 2.0))
    with pytest.raises(ValueError):
        SystemConfig(test_preemption="sometimes")


# ----------------------------------------------------------------------
# Preemption semantics
# ----------------------------------------------------------------------
def test_auto_preemption_follows_scheduler():
    proposed = ManycoreSystem(replace(QUICK, test_policy="power-aware"))
    assert proposed.preemption_policy() == "abort"
    baseline = ManycoreSystem(replace(QUICK, test_policy="unaware"))
    assert baseline.preemption_policy() == "reserve"


def test_explicit_preemption_overrides():
    system = ManycoreSystem(
        replace(QUICK, test_policy="power-aware", test_preemption="reserve")
    )
    assert system.preemption_policy() == "reserve"


def test_abort_policy_preempts_tests():
    result = run_system(replace(QUICK, test_policy="power-aware"))
    assert result.test_stats.aborted > 0


def test_reserve_policy_never_aborts():
    result = run_system(replace(QUICK, test_policy="round-robin"))
    assert result.test_stats.aborted == 0


# ----------------------------------------------------------------------
# Final-state consistency
# ----------------------------------------------------------------------
def test_final_core_states_consistent():
    system = ManycoreSystem(QUICK)
    result = system.run()
    for core in system.chip:
        if core.state is CoreState.BUSY:
            assert system.executor.execution_on(core) is not None
        if core.state is CoreState.TESTING:
            assert system.runner.session_of(core) is not None
        if core.is_idle() and core.owner_app is None:
            assert system.executor.execution_on(core) is None


def test_fault_injection_and_detection_pipeline():
    config = replace(
        QUICK,
        horizon_us=30_000.0,
        fault_hazard_per_us=5e-6,
        test_policy="power-aware",
    )
    result = run_system(config)
    assert len(result.fault_records) > 0
    detected = [r for r in result.fault_records if r.detected]
    if detected:  # detection requires a test to land on the faulty core
        assert result.mean_detection_latency_us() > 0
        assert all(r.detection_latency() >= 0 for r in detected)


def test_detected_faulty_cores_are_retired():
    config = replace(
        QUICK,
        horizon_us=30_000.0,
        fault_hazard_per_us=5e-6,
    )
    system = ManycoreSystem(config)
    result = system.run()
    detected_ids = {r.core_id for r in result.fault_records if r.detected}
    for core_id in detected_ids:
        assert system.chip.core(core_id).state is CoreState.FAULTY


def test_throughput_penalty_headline_quick():
    """<1% penalty claim holds even at a short horizon (coarse check)."""
    off = run_system(replace(QUICK, test_policy="none"))
    on = run_system(replace(QUICK, test_policy="power-aware"))
    penalty = 1.0 - on.throughput_ops_per_us / off.throughput_ops_per_us
    assert penalty < 0.02  # generous bound for the short horizon


def test_bursty_workload_runs():
    result = run_system(replace(QUICK, horizon_us=10_000.0, bursty=True))
    assert result.metrics.apps_arrived > 0


# ----------------------------------------------------------------------
# Mixed-criticality priorities
# ----------------------------------------------------------------------
def test_rt_priorities_cut_hard_rt_waiting():
    mixed = replace(
        QUICK,
        horizon_us=20_000.0,
        profile_names=("hard-rt-small", "soft-rt-medium", "large"),
        profile_weights=(0.3, 0.4, 0.3),
    )
    fifo = run_system(mixed)
    prio = run_system(replace(mixed, rt_priorities=True))
    fifo_waits = fifo.metrics.mean_waiting_by_class()
    prio_waits = prio.metrics.mean_waiting_by_class()
    assert prio_waits["hard-rt"] <= fifo_waits["hard-rt"]


def test_rt_priorities_off_is_fifo():
    """Default config ignores rt classes entirely (bit-identical path)."""
    mixed = replace(
        QUICK,
        horizon_us=8_000.0,
        profile_names=("hard-rt-small", "soft-rt-medium"),
        profile_weights=(0.5, 0.5),
    )
    a = run_system(mixed)
    b = run_system(mixed)
    assert a.summary() == b.summary()


def test_waiting_by_class_keys():
    mixed = replace(
        QUICK,
        horizon_us=15_000.0,
        profile_names=("hard-rt-small", "large"),
        profile_weights=(0.5, 0.5),
        rt_priorities=True,
    )
    result = run_system(mixed)
    waits = result.metrics.mean_waiting_by_class()
    assert set(waits) <= {"hard-rt", "soft-rt", "best-effort"}
    assert all(v >= 0 for v in waits.values())

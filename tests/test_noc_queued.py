"""Tests for the queued (store-and-forward) NoC model."""

import pytest

from repro.noc.model import NocParameters
from repro.noc.queued import QueuedNocModel
from repro.noc.topology import Mesh


@pytest.fixture
def noc():
    return QueuedNocModel(Mesh(4, 4))


def test_uncontended_latency_is_store_and_forward(noc):
    p = noc.params
    est = noc.estimate((0, 0), (2, 0), 1000.0)
    serial = 1000.0 / p.bandwidth_flits_per_us
    expected = 2 * (p.router_delay_us + serial)
    assert est.latency_us == pytest.approx(expected)
    assert est.hops == 2


def test_zero_volume_or_same_node_free(noc):
    assert noc.estimate((0, 0), (3, 3), 0.0).latency_us == 0.0
    assert noc.estimate((1, 1), (1, 1), 500.0).latency_us == 0.0


def test_second_message_queues_behind_first(noc):
    first = noc.begin_transfer((0, 0), (3, 0), 1000.0, now=0.0)
    second = noc.begin_transfer((0, 0), (3, 0), 1000.0, now=0.0)
    assert second.latency_us > first.latency_us
    assert second.max_link_load > 0.0  # waited in a queue


def test_reservations_expire_with_time(noc):
    first = noc.begin_transfer((0, 0), (3, 0), 1000.0, now=0.0)
    late = noc.begin_transfer(
        (0, 0), (3, 0), 1000.0, now=first.latency_us + 1.0
    )
    assert late.latency_us == pytest.approx(first.latency_us)


def test_disjoint_paths_never_queue(noc):
    noc.begin_transfer((0, 0), (3, 0), 5000.0, now=0.0)
    other = noc.begin_transfer((0, 3), (3, 3), 1000.0, now=0.0)
    assert other.max_link_load == 0.0


def test_estimate_does_not_commit(noc):
    noc.estimate((0, 0), (3, 0), 1000.0, now=0.0)
    fresh = noc.begin_transfer((0, 0), (3, 0), 1000.0, now=0.0)
    assert fresh.max_link_load == 0.0


def test_energy_matches_analytic_formula(noc):
    p = noc.params
    est = noc.estimate((0, 0), (2, 0), 100.0)
    expected_pj = 100.0 * (2 * p.e_link_pj + 3 * p.e_router_pj)
    assert est.energy_uj == pytest.approx(expected_pj * 1e-6)


def test_totals_and_average_hops(noc):
    noc.begin_transfer((0, 0), (2, 0), 100.0, now=0.0)
    noc.begin_transfer((0, 0), (0, 3), 50.0, now=0.0)
    assert noc.total_flits == 150.0
    assert noc.average_hops() == pytest.approx((200.0 + 150.0) / 150.0)
    assert noc.total_energy_uj > 0.0


def test_end_transfer_is_noop(noc):
    noc.begin_transfer((0, 0), (1, 0), 100.0, now=0.0)
    noc.end_transfer((0, 0), (1, 0), 100.0)  # must not raise


def test_validation(noc):
    with pytest.raises(ValueError):
        noc.estimate((0, 0), (1, 0), -1.0)
    with pytest.raises(ValueError):
        noc.estimate((0, 0), (1, 0), 1.0, now=-1.0)


def test_system_runs_with_queued_mode():
    from repro.core.system import SystemConfig, run_system

    result = run_system(
        SystemConfig(noc_mode="queued", horizon_us=5_000.0, seed=3)
    )
    assert result.metrics.apps_completed > 0


def test_system_rejects_unknown_noc_mode():
    from repro.core.system import SystemConfig, run_system

    with pytest.raises(ValueError, match="noc_mode"):
        run_system(SystemConfig(noc_mode="wormhole", horizon_us=1_000.0))

"""Tests for the lockstep batch engine (``repro.batch``).

The contract pinned here is the one every batched entry point rests on:
**the scalar engine is the oracle**.  ``run_batch(config, seeds)`` must
be digest-identical, per seed, to running each seed through
``run_system`` — across policies, mappers, fault injection and odd
epoch/horizon grids — and the batched ``run_many``/``run_campaign``
paths must produce byte-identical sweeps regardless of worker count or
chunk completion order.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.batch import (
    BatchArrays,
    BatchShapeError,
    as_seed_array,
    hop_matrix,
    result_digest,
    run_batch,
    warm_route_cache,
)
from repro.campaign import CampaignSpec, run_campaign
from repro.core.system import SystemConfig, run_system
from repro.experiments.parallel import RunFailed, run_many
from repro.noc.topology import Mesh
from repro.noc.routing import xy_link_ids


def small_config(**overrides) -> SystemConfig:
    base = {
        "width": 4,
        "height": 4,
        "horizon_us": 2000.0,
        "arrival_rate_per_ms": 8.0,
        "seed": 1,
    }
    base.update(overrides)
    return SystemConfig(**base)


# ----------------------------------------------------------------------
# The oracle contract
# ----------------------------------------------------------------------
@settings(max_examples=12, deadline=None)
@given(
    seeds=st.lists(
        st.integers(min_value=0, max_value=10_000),
        min_size=1,
        max_size=4,
        unique=True,
    ),
    test_policy=st.sampled_from(["power-aware", "none", "unaware"]),
    mapper=st.sampled_from(["contiguous", "scatter", "test-aware"]),
    power_policy=st.sampled_from(["pid", "tsp", "none"]),
    thermal=st.booleans(),
    hazard=st.sampled_from([0.0, 2e-4]),
)
def test_run_batch_digest_equals_scalar_runs(
    seeds, test_policy, mapper, power_policy, thermal, hazard
):
    """Every lane digest-equals its scalar twin on random small configs."""
    config = small_config(
        test_policy=test_policy,
        mapper=mapper,
        power_policy=power_policy,
        thermal_enabled=thermal,
        fault_hazard_per_us=hazard,
    )
    batched = run_batch(config, seeds)
    assert len(batched) == len(seeds)
    for seed, result in zip(seeds, batched):
        scalar = run_system(replace(config, seed=seed))
        assert result_digest(result) == result_digest(scalar)


def test_run_batch_matches_scalar_on_odd_grid():
    """Epoch/horizon grids that do not divide evenly still align."""
    config = small_config(epoch_us=73.0, horizon_us=1537.0)
    seeds = [5, 9]
    batched = run_batch(config, seeds)
    for seed, result in zip(seeds, batched):
        scalar = run_system(replace(config, seed=seed))
        assert result_digest(result) == result_digest(scalar)


def test_run_batch_accepts_ndarray_seeds():
    config = small_config(horizon_us=1000.0)
    from_list = run_batch(config, [3, 8])
    from_array = run_batch(config, np.array([3, 8]))
    assert [result_digest(r) for r in from_list] == [
        result_digest(r) for r in from_array
    ]


# ----------------------------------------------------------------------
# Shape/dtype validation
# ----------------------------------------------------------------------
def test_seed_array_rejects_2d():
    with pytest.raises(BatchShapeError, match="1-D"):
        as_seed_array(np.array([[1, 2], [3, 4]]))


def test_seed_array_rejects_empty():
    with pytest.raises(BatchShapeError, match="at least one seed"):
        as_seed_array([])


def test_seed_array_rejects_float_and_bool_dtypes():
    with pytest.raises(TypeError, match="integer dtype"):
        as_seed_array([1.5, 2.0])
    with pytest.raises(TypeError, match="integer dtype"):
        as_seed_array(np.array([True, False]))


def test_run_batch_propagates_seed_validation():
    config = small_config()
    with pytest.raises(BatchShapeError):
        run_batch(config, [])
    with pytest.raises(TypeError):
        run_batch(config, [1.0, 2.0])


def test_batch_arrays_validate_dimensions():
    with pytest.raises(TypeError, match="ints"):
        BatchArrays(2.0, 16)
    with pytest.raises(BatchShapeError, match="at least one lane"):
        BatchArrays(0, 16)
    with pytest.raises(BatchShapeError, match="at least one lane"):
        BatchArrays(2, 0)


def test_batch_arrays_shapes_follow_leading_batch_axis():
    arrays = BatchArrays(3, 16)
    assert arrays.stress.shape == (3, 16)
    assert arrays.candidate.shape == (3, 16)
    assert arrays.candidate.dtype == bool
    assert arrays.measured.shape == (3,)
    assert arrays.pid_integral.shape == (3,)


def test_gather_criticality_rejects_wrong_chip():
    arrays = BatchArrays(1, 16)
    with pytest.raises(BatchShapeError, match="expects"):
        arrays.gather_criticality(0, [object()] * 9)


# ----------------------------------------------------------------------
# Route helpers
# ----------------------------------------------------------------------
def test_hop_matrix_matches_cached_routes():
    mesh = Mesh(4, 4)
    warm_route_cache(mesh)
    hops = hop_matrix(mesh)
    positions = list(mesh.positions())
    assert hops.shape == (16, 16)
    for a, src in enumerate(positions):
        for b, dst in enumerate(positions):
            assert hops[a, b] == len(xy_link_ids(mesh, src, dst))
    with pytest.raises(ValueError):
        hops[0, 0] = 99  # returned read-only


# ----------------------------------------------------------------------
# run_many: serial == pooled == batched (satellite determinism pin)
# ----------------------------------------------------------------------
def test_run_many_batched_matches_serial_and_pooled():
    """One sweep, four execution modes, one list of digests."""
    config = small_config(horizon_us=1500.0)
    configs = [replace(config, seed=s) for s in (1, 2, 3, 4, 5)]
    serial = run_many(configs)
    expected = [result_digest(r) for r in serial]
    for kwargs in (
        {"jobs": 2},
        {"batch_size": 2},
        {"jobs": 2, "batch_size": 2},
    ):
        results = run_many(configs, **kwargs)
        assert [result_digest(r) for r in results] == expected


def test_run_many_batched_handles_mixed_config_groups():
    """Only seed-replicas of the same config may share a lockstep chunk."""
    a = small_config(horizon_us=1200.0)
    b = small_config(horizon_us=1200.0, test_policy="none")
    configs = [
        replace(a, seed=1),
        replace(b, seed=1),
        replace(a, seed=2),
        replace(b, seed=2),
    ]
    serial = [result_digest(r) for r in run_many(configs)]
    batched = [result_digest(r) for r in run_many(configs, batch_size=4)]
    pooled = [
        result_digest(r) for r in run_many(configs, jobs=2, batch_size=2)
    ]
    assert batched == serial
    assert pooled == serial


def test_run_many_batched_failure_attribution_is_deterministic():
    """The failing chunk's first sweep index is reported, serial or pooled."""
    good = small_config(horizon_us=1000.0)
    bad = small_config(horizon_us=1000.0, mapper="nope")
    configs = [replace(good, seed=1), replace(good, seed=2), bad]
    for kwargs in ({"batch_size": 2}, {"jobs": 2, "batch_size": 1}):
        with pytest.raises(RunFailed) as excinfo:
            run_many(configs, **kwargs)
        assert excinfo.value.index == 2


def test_run_many_rejects_bad_batch_size():
    with pytest.raises(ValueError, match="batch_size"):
        run_many([small_config()], batch_size=0)


# ----------------------------------------------------------------------
# Campaign batching
# ----------------------------------------------------------------------
def _campaign_spec() -> CampaignSpec:
    return CampaignSpec.from_dict(
        {
            "name": "batch-test",
            "base": {
                "width": 4,
                "height": 4,
                "horizon_us": 1500.0,
                "arrival_rate_per_ms": 8.0,
            },
            "grid": {"test_policy": ["power-aware", "none"]},
            "seeds": {"start": 1, "count": 3},
        }
    )


def test_campaign_batched_aggregate_matches_scalar(tmp_path):
    scalar = run_campaign(str(tmp_path / "scalar"), spec=_campaign_spec())
    batched = run_campaign(
        str(tmp_path / "batched"), spec=_campaign_spec(), batch=3
    )
    assert batched.aggregate == scalar.aggregate


def test_campaign_batch_validation(tmp_path):
    with pytest.raises(ValueError, match="batch"):
        run_campaign(str(tmp_path / "a"), spec=_campaign_spec(), batch=0)
    with pytest.raises(ValueError, match="worker"):
        run_campaign(
            str(tmp_path / "b"),
            spec=_campaign_spec(),
            batch=2,
            worker=lambda payload: None,
        )

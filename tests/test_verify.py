"""Tests for repro.verify: invariants, metamorphic relations, replay.

Three layers, mirroring the package:

* the inline invariant checker is read-only (verified runs are
  byte-identical to unverified ones), certifies every E1–E9 proposed
  config violation-free, and each invariant has a negative test proving
  it fires on an injected violation;
* each metamorphic relation holds on the real simulator and its pure
  ``check`` flags doctored samples (hypothesis property tests) and a
  deliberately broken scheduler stub;
* journal replay reproduces the live meter bit-for-bit on a seeded run
  and turns corrupted/truncated journals into a clean ``ReplayError``.
"""

import dataclasses
from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.system import ManycoreSystem, SystemConfig, run_system
from repro.experiments.runners import DEFAULT_CONFIG, experiment_configs
from repro.obs.journal import Journal, JournalEvent
from repro.obs.provenance import digest_of
from repro.platform.core import CoreState
from repro.power.meter import PowerBreakdown
from repro.verify import (
    NULL_VERIFIER,
    BudgetMonotonicThroughput,
    InvariantChecker,
    LevelDomainCoverage,
    NoTestPolicyZeroTests,
    PowerConservationInvariant,
    ReplayError,
    SeedPermutationInvariance,
    StateLegalityInvariant,
    TestNonIntrusivenessInvariant,
    TimeMonotonicityInvariant,
    VerificationError,
    ZeroHazardZeroFaults,
    check_relations,
    default_relations,
    replay_journal,
    verify_config,
)

from tests.conftest import small_system_config

SMALL = small_system_config(horizon_us=6_000.0, seed=7)


def _digest(result):
    return digest_of(sorted(result.summary().items()))


# ----------------------------------------------------------------------
# Read-only contract + E1..E9 certification
# ----------------------------------------------------------------------
def test_verified_run_is_byte_identical_to_unverified():
    plain = run_system(SMALL)
    verified, checker = verify_config(SMALL)
    assert checker.ok
    assert checker.ticks_checked > 0
    assert _digest(verified) == _digest(plain)
    assert verified.events_fired == plain.events_fired


def test_null_verifier_is_a_no_op():
    plain = run_system(SMALL)
    nulled = run_system(SMALL, verifier=NULL_VERIFIER)
    assert not NULL_VERIFIER.enabled
    assert NULL_VERIFIER.checks_run == 0
    assert _digest(nulled) == _digest(plain)


def test_verified_run_with_journal_is_byte_identical():
    plain = run_system(SMALL)
    journal = Journal(level="info")
    verified, checker = verify_config(SMALL, journal=journal)
    assert checker.ok
    assert _digest(verified) == _digest(plain)
    counts = journal.counts()
    assert counts["verify.platform"] == 1
    assert counts["verify.cores"] == checker.ticks_checked
    assert counts["verify.power"] == checker.ticks_checked
    assert "verify.violation" not in counts


@pytest.mark.parametrize(
    "experiment_id", sorted(experiment_configs(horizon_us=1.0))
)
def test_no_violations_on_experiment_configs(experiment_id):
    """The paper's proposed-method configs are invariant-clean (E1–E9)."""
    config = experiment_configs(horizon_us=5_000.0)[experiment_id]
    result, checker = verify_config(config)
    assert checker.ok, [v.message for v in checker.violations[:3]]
    assert checker.ticks_checked > 0
    assert result.summary()["budget_violation_rate"] == 0.0


def test_checker_summary_shape():
    _result, checker = verify_config(SMALL)
    summary = checker.summary()
    assert summary["ok"] is True
    assert summary["violations"] == 0
    assert summary["first_snapshot"] is None
    assert "power-conservation" in summary["invariants"]
    assert summary["checks_run"] >= summary["ticks_checked"]


def test_checker_cannot_attach_twice():
    checker = InvariantChecker()
    ManycoreSystem(SMALL, verifier=checker)
    with pytest.raises(RuntimeError, match="already attached"):
        ManycoreSystem(SMALL, verifier=checker)


# ----------------------------------------------------------------------
# Negative tests: every invariant fires on an injected violation
# ----------------------------------------------------------------------
def _fresh(config=SMALL, **checker_kwargs):
    checker = InvariantChecker(**checker_kwargs)
    system = ManycoreSystem(config, verifier=checker)
    return system, checker


def _names(checker):
    return {violation.invariant for violation in checker.violations}


def test_budget_invariant_fires_on_power_unaware_baseline():
    """The strawman policy punctures the cap; the invariant records it."""
    config = replace(
        DEFAULT_CONFIG, horizon_us=20_000.0, test_policy="unaware"
    )
    result, checker = verify_config(config)
    assert not checker.ok
    assert _names(checker) == {"budget-compliance"}
    assert result.summary()["budget_violation_rate"] > 0.0
    violation = checker.violations[0]
    # Violation provenance: what was drawing power and who scheduled it.
    for key in (
        "measured_w", "cap_w", "overshoot_w", "testing_cores",
        "active_sessions", "scheduler", "workload_w", "test_w",
    ):
        assert key in violation.details
    assert violation.details["overshoot_w"] > 0
    assert violation.details["scheduler"] == "unaware"
    snapshot = checker.first_snapshot
    assert snapshot is not None
    assert snapshot["power"]["total_w"] > snapshot["power"]["cap_w"]
    assert set(snapshot["cores"]) == {s.name for s in CoreState}


def test_power_conservation_invariant_fires_on_doctored_breakdown():
    system, checker = _fresh()
    real = system.meter.breakdown()
    doctored = PowerBreakdown(
        workload=real.workload + 1.0,
        test=real.test,
        leakage=real.leakage,
        noc=real.noc,
    )
    checker.on_control_tick(system, 100.0, doctored)
    assert "power-conservation" in _names(checker)
    violation = next(
        v for v in checker.violations if v.invariant == "power-conservation"
    )
    assert violation.details["channel"] == "workload"
    assert violation.details["error_w"] == pytest.approx(1.0)


def test_state_legality_invariant_fires_on_illegal_transition():
    system, checker = _fresh()
    core = system.chip.core(0)
    core.state = CoreState.FAULTY  # IDLE -> FAULTY: injection can't retire
    assert _names(checker) == {"state-legality"}
    violation = checker.violations[0]
    assert violation.details == {
        "core": 0, "from_state": "IDLE", "to_state": "FAULTY"
    }


def test_state_legality_allows_the_legal_lifecycle():
    system, checker = _fresh()
    core = system.chip.core(0)
    core.state = CoreState.TESTING
    core.state = CoreState.IDLE
    core.state = CoreState.BUSY
    core.state = CoreState.IDLE
    core.level = system.chip.vf_table.min_level  # same-state callback
    assert checker.ok


def test_non_intrusiveness_invariant_fires_on_owned_testing_core():
    system, checker = _fresh()
    core = system.chip.core(3)
    core.owner_app = 42
    core.state = CoreState.TESTING
    assert "test-non-intrusiveness" in _names(checker)
    violation = next(
        v
        for v in checker.violations
        if v.invariant == "test-non-intrusiveness"
    )
    assert violation.details["owner_app"] == 42
    # The per-tick sweep sees the standing violation too.
    before = len(checker.violations)
    checker.on_control_tick(system, 100.0, system.meter.breakdown())
    assert len(checker.violations) > before


def test_time_monotonicity_invariant_fires_on_backwards_clock():
    system, checker = _fresh()
    breakdown = system.meter.breakdown()
    checker.on_control_tick(system, 100.0, breakdown)
    assert checker.ok
    checker.on_control_tick(system, 50.0, breakdown)
    assert "time-monotonicity" in _names(checker)


def test_noc_sanity_invariant_fires_on_negative_link_load():
    system, checker = _fresh()
    system.noc._link_load[5] = -0.25
    checker.on_control_tick(system, 100.0, system.meter.breakdown())
    assert "noc-link-sanity" in _names(checker)
    violation = next(
        v for v in checker.violations if v.invariant == "noc-link-sanity"
    )
    assert violation.details["link"] == 5


def test_noc_sanity_invariant_fires_on_negative_noc_power():
    system, checker = _fresh()
    real = system.meter.breakdown()
    doctored = dataclasses.replace(real, noc=-1.0)
    checker.on_control_tick(system, 100.0, doctored)
    assert "noc-link-sanity" in _names(checker)


def test_fused_and_generic_transition_paths_agree():
    """Stock invariants use the fused listener; subclasses force the
    generic per-invariant loop.  Both must record identical violations."""

    class CustomLegality(StateLegalityInvariant):
        pass

    fused_system, fused_checker = _fresh()
    assert fused_checker._fused is not None
    generic_checker = InvariantChecker(
        invariants=[
            CustomLegality(),
            TestNonIntrusivenessInvariant(),
            TimeMonotonicityInvariant(),
        ]
    )
    generic_system = ManycoreSystem(SMALL, verifier=generic_checker)
    assert generic_checker._fused is None

    for system in (fused_system, generic_system):
        core = system.chip.core(2)
        core.owner_app = 9
        core.state = CoreState.TESTING
        system.chip.core(0).state = CoreState.FAULTY

    fused = [(v.invariant, v.message, v.details) for v in fused_checker.violations]
    generic = [
        (v.invariant, v.message, v.details) for v in generic_checker.violations
    ]
    assert fused == generic
    assert {name for name, _msg, _d in fused} == {
        "state-legality",
        "test-non-intrusiveness",
    }


def test_power_conservation_audits_on_a_cadence():
    invariant = PowerConservationInvariant(audit_every=4)
    system, checker = _fresh()
    audited = []
    original = system.meter.scan_breakdown

    def counting_scan():
        audited.append(True)
        return original()

    system.meter.scan_breakdown = counting_scan
    breakdown = system.meter.breakdown()
    for tick in range(8):
        invariant.on_tick(system, float(tick), breakdown)
    assert len(audited) == 2  # ticks 0 and 4
    with pytest.raises(ValueError):
        PowerConservationInvariant(audit_every=0)


def test_raise_mode_stops_at_first_violation():
    system, checker = _fresh(mode="raise")
    core = system.chip.core(0)
    with pytest.raises(VerificationError, match="state-legality"):
        core.state = CoreState.FAULTY


def test_max_violations_bounds_recording():
    system, checker = _fresh(max_violations=2)
    breakdown = system.meter.breakdown()
    doctored = dataclasses.replace(breakdown, noc=-1.0)
    # Tick 0 fires twice — power-conservation audits its first epoch
    # (noc channel diverges from the scan) plus noc-link-sanity — and
    # ticks 1..4 fall between conservation audits, firing sanity only.
    for tick in range(5):
        checker.on_control_tick(system, float(tick), doctored)
    assert len(checker.violations) == 2
    assert checker.suppressed == 4
    assert not checker.ok
    assert checker.summary()["violations"] == 6


def test_violations_are_mirrored_into_the_journal():
    journal = Journal(level="info")
    config = replace(
        DEFAULT_CONFIG, horizon_us=20_000.0, test_policy="unaware"
    )
    _result, checker = verify_config(config, journal=journal)
    assert not checker.ok
    mirrored = journal.filter(type_prefix="verify.violation")
    assert len(mirrored) == len(checker.violations)
    assert mirrored[0].data["invariant"] == "budget-compliance"
    # ...and the journal audit roll-up counts them.
    from repro.obs import audit

    roll = audit.summarize(journal)
    assert roll["verify_violations"] == len(mirrored)
    assert roll["verify_ticks"] == checker.ticks_checked
    assert "invariant violation" in audit.format_summary(journal)


# ----------------------------------------------------------------------
# Metamorphic relations: real simulator + property tests on the checkers
# ----------------------------------------------------------------------
def test_relation_suite_holds_on_the_real_simulator():
    base = replace(SMALL, horizon_us=8_000.0, seed=11)
    report = check_relations(base)
    assert report.ok, report.failures()
    assert report.n_runs == sum(o.n_runs for o in report.outcomes)
    assert {o.name for o in report.outcomes} == {
        r.name for r in default_relations()
    }


def test_budget_monotonic_checker_accepts_monotone_samples():
    relation = BudgetMonotonicThroughput(tolerance=0.02)
    samples = [
        {"tdp_w": 40.0, "throughput": 10.0},
        {"tdp_w": 60.0, "throughput": 10.5},
        {"tdp_w": 80.0, "throughput": 10.4},  # within 2% tolerance
    ]
    assert relation.check(samples) == []


def test_budget_monotonic_checker_flags_a_real_drop():
    relation = BudgetMonotonicThroughput(tolerance=0.02)
    samples = [
        {"tdp_w": 40.0, "throughput": 10.0},
        {"tdp_w": 80.0, "throughput": 8.0},
    ]
    failures = relation.check(samples)
    assert len(failures) == 1 and "dropped" in failures[0]


@settings(max_examples=200, deadline=None)
@given(
    throughputs=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        min_size=2,
        max_size=6,
    ),
    tolerance=st.floats(min_value=0.0, max_value=0.5),
)
def test_budget_monotonic_checker_matches_reference(throughputs, tolerance):
    """check() fails iff some adjacent pair drops beyond tolerance."""
    relation = BudgetMonotonicThroughput(tolerance=tolerance)
    samples = [
        {"tdp_w": 10.0 * (i + 1), "throughput": thr}
        for i, thr in enumerate(throughputs)
    ]
    expected_bad = any(
        hi < lo * (1.0 - tolerance)
        for lo, hi in zip(throughputs, throughputs[1:])
    )
    assert bool(relation.check(samples)) == expected_bad


@settings(max_examples=100, deadline=None)
@given(
    injected=st.integers(min_value=0, max_value=5),
    detected=st.integers(min_value=0, max_value=5),
)
def test_zero_hazard_checker_matches_reference(injected, detected):
    relation = ZeroHazardZeroFaults()
    samples = [{"injected": float(injected), "detected": float(detected)}]
    assert bool(relation.check(samples)) == (injected != 0 or detected != 0)


@settings(max_examples=100, deadline=None)
@given(data=st.data())
def test_seed_permutation_checker_matches_reference(data):
    seeds = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=99),
            min_size=2,
            max_size=5,
            unique=True,
        )
    )
    digests = {seed: f"digest-{seed}" for seed in seeds}
    order = data.draw(st.permutations(seeds))
    corrupt = data.draw(st.booleans())
    forward = [{"seed": s, "digest": digests[s]} for s in seeds]
    backward = [{"seed": s, "digest": digests[s]} for s in order]
    if corrupt:
        backward[0] = dict(backward[0], digest="drifted")
    relation = SeedPermutationInvariance(seeds=tuple(seeds))
    failures = relation.check(forward + backward)
    assert bool(failures) == corrupt


def test_level_domain_checker_flags_out_of_ladder_and_non_top_nominal():
    relation = LevelDomainCoverage()
    ok = [
        {"policy": "rotate", "n_levels": 8, "covered": [0, 3, 7]},
        {"policy": "nominal", "n_levels": 8, "covered": [7]},
    ]
    assert relation.check(ok) == []
    bad_domain = [{"policy": "rotate", "n_levels": 8, "covered": [0, 9]}]
    assert len(relation.check(bad_domain)) == 1
    bad_nominal = [{"policy": "nominal", "n_levels": 8, "covered": [2, 7]}]
    assert len(relation.check(bad_nominal)) == 1


def test_no_test_checker_flags_any_testing_activity():
    relation = NoTestPolicyZeroTests()
    assert relation.check(
        [{"tests": 0.0, "aborted": 0.0, "test_share": 0.0}]
    ) == []
    assert relation.check(
        [{"tests": 3.0, "aborted": 0.0, "test_share": 0.01}]
    )


class _StubResult:
    """Minimal SimulationResult stand-in for relation plumbing tests."""

    def __init__(self, config, throughput, tests=0.0, per_level=None):
        self.config = config
        self.throughput_ops_per_us = throughput
        self.per_level_tests = per_level or {}
        self._tests = tests

    def summary(self):
        return {
            "throughput_ops_per_us": self.throughput_ops_per_us,
            "tests_completed": self._tests,
            "tests_aborted": 0.0,
            "test_power_share": 0.02 if self._tests else 0.0,
            "faults_injected": 0.0,
            "faults_detected": 0.0,
        }


def test_relations_flag_a_broken_scheduler_stub():
    """A policy that tests despite `none` and loses throughput with budget
    is caught by the relation suite without any golden number."""

    def broken_runner(configs, jobs, cache=None):
        results = []
        for config in configs:
            # Broken behaviour: throughput *decreases* in the budget, and
            # the `none` policy still runs tests.
            throughput = 1000.0 / config.tdp_w
            tests = 7.0 if config.test_policy == "none" else 0.0
            results.append(_StubResult(config, throughput, tests=tests))
        return results

    relations = [BudgetMonotonicThroughput(), NoTestPolicyZeroTests()]
    report = check_relations(SMALL, relations=relations, runner=broken_runner)
    assert not report.ok
    assert {o.name for o in report.outcomes if not o.ok} == {
        "budget-monotonic-throughput",
        "no-test-policy-zero-tests",
    }


def test_relations_pass_a_faithful_stub():
    def faithful_runner(configs, jobs, cache=None):
        return [
            _StubResult(
                config,
                throughput=config.tdp_w,
                tests=0.0 if config.test_policy == "none" else 5.0,
            )
            for config in configs
        ]

    relations = [BudgetMonotonicThroughput(), NoTestPolicyZeroTests()]
    report = check_relations(SMALL, relations=relations, runner=faithful_runner)
    assert report.ok, report.failures()


def test_relation_constructor_validation():
    with pytest.raises(ValueError):
        BudgetMonotonicThroughput(factors=(2.0, 1.0))
    with pytest.raises(ValueError):
        SeedPermutationInvariance(seeds=(5,))


# ----------------------------------------------------------------------
# Journal replay
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def replay_journal_events():
    """Seeded E2-style run with journal + verifier (shared, read-only)."""
    journal = Journal(level="info")
    config = replace(DEFAULT_CONFIG, horizon_us=10_000.0)
    result, checker = verify_config(config, journal=journal)
    assert checker.ok
    return journal, result, checker


def test_replay_matches_live_meter_bit_for_bit(replay_journal_events):
    journal, _result, checker = replay_journal_events
    report = replay_journal(journal)
    assert report.ok
    assert report.ticks_checked == checker.ticks_checked
    assert report.max_abs_error_w == 0.0


def test_replay_round_trips_through_jsonl(tmp_path, replay_journal_events):
    journal, _result, _checker = replay_journal_events
    path = tmp_path / "run.jsonl"
    journal.write_jsonl(str(path))
    report = replay_journal(str(path))
    assert report.ok and report.ticks_checked > 0


def test_replay_detects_a_tampered_power_record(replay_journal_events):
    journal, _result, _checker = replay_journal_events
    events = list(journal.events)
    index, target = next(
        (i, e) for i, e in enumerate(events) if e.type == "verify.power"
    )
    data = dict(target.data, workload_w=target.data["workload_w"] + 0.5)
    events[index] = JournalEvent(time=target.time, type="verify.power", data=data)
    report = replay_journal(events)
    assert not report.ok
    assert report.mismatches[0]["channel"] == "workload_w"
    assert report.mismatches[0]["error_w"] == pytest.approx(0.5)


def test_replay_flags_illegal_recorded_transitions(replay_journal_events):
    journal, _result, _checker = replay_journal_events
    events = list(journal.events) + [
        JournalEvent(
            time=99.0,
            type="core.transition",
            data={"core": 1, "from_state": "BUSY", "to_state": "FAULTY"},
        )
    ]
    report = replay_journal(events)
    assert report.transitions_checked == 1
    assert not report.ok
    assert report.transition_violations[0]["core"] == 1


def test_replay_errors_on_missing_file():
    with pytest.raises(ReplayError, match="cannot read"):
        replay_journal("/nonexistent/journal.jsonl")


def test_replay_errors_on_corrupt_jsonl(tmp_path, replay_journal_events):
    journal, _result, _checker = replay_journal_events
    path = tmp_path / "corrupt.jsonl"
    text = journal.to_jsonl()
    path.write_text(text[: len(text) // 2] + '{"broken', encoding="utf-8")
    with pytest.raises(ReplayError, match="corrupt"):
        replay_journal(str(path))


def test_replay_errors_on_truncated_snapshot_pair(replay_journal_events):
    journal, _result, _checker = replay_journal_events
    events = list(journal.events)
    last_power = max(
        i for i, e in enumerate(events) if e.type == "verify.power"
    )
    with pytest.raises(ReplayError, match="truncated"):
        replay_journal(events[:last_power])


def test_replay_errors_on_missing_platform_event(replay_journal_events):
    journal, _result, _checker = replay_journal_events
    events = [e for e in journal.events if e.type != "verify.platform"]
    with pytest.raises(ReplayError, match="verify.platform"):
        replay_journal(events)


def test_replay_errors_on_journal_without_verify_events():
    journal = Journal(level="info")
    run_system(SMALL, journal=journal)
    with pytest.raises(ReplayError, match="no verify"):
        replay_journal(journal)


def test_replay_errors_on_malformed_payload(replay_journal_events):
    journal, _result, _checker = replay_journal_events
    events = []
    for event in journal.events:
        if event.type == "verify.cores":
            event = JournalEvent(
                time=event.time,
                type="verify.cores",
                data={"cores": [["i"] for _ in event.data["cores"]]},
            )
        events.append(event)
    with pytest.raises(ReplayError, match="malformed"):
        replay_journal(events)


def test_replay_errors_on_unknown_state_code(replay_journal_events):
    journal, _result, _checker = replay_journal_events
    events = []
    for event in journal.events:
        if event.type == "verify.cores":
            cores = [["x", entry[1], entry[2]] for entry in event.data["cores"]]
            event = JournalEvent(
                time=event.time, type="verify.cores", data={"cores": cores}
            )
        events.append(event)
    with pytest.raises(ReplayError, match="unknown core state code"):
        replay_journal(events)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_verify_invariants_smoke(capsys):
    from repro.cli import main

    assert main(
        ["verify", "invariants", "--experiments", "E2", "--horizon-ms", "2"]
    ) == 0
    out = capsys.readouterr().out
    assert "invariant checks" in out and "ok" in out


def test_cli_verify_invariants_rejects_unknown_ids(capsys):
    from repro.cli import main

    assert main(["verify", "invariants", "--experiments", "E99"]) == 2
    assert "unknown experiment ids" in capsys.readouterr().err


def test_cli_verify_relations_smoke(capsys):
    from repro.cli import main

    assert main(
        [
            "verify", "relations",
            "--relations", "no-test-policy-zero-tests",
            "--horizon-ms", "2",
        ]
    ) == 0
    assert "metamorphic relations" in capsys.readouterr().out


def test_cli_verify_relations_rejects_unknown_names(capsys):
    from repro.cli import main

    assert main(["verify", "relations", "--relations", "nope"]) == 2
    assert "unknown relations" in capsys.readouterr().err


def test_cli_run_verify_and_replay_round_trip(tmp_path, capsys):
    from repro.cli import main

    journal_path = str(tmp_path / "run.jsonl")
    assert main(
        ["run", "--horizon-ms", "2", "--verify", "--journal", journal_path]
    ) == 0
    out = capsys.readouterr().out
    assert "verify:" in out and "0 violation(s)" in out
    assert main(["verify", "replay", journal_path]) == 0
    assert "replayed" in capsys.readouterr().out


def test_cli_verify_replay_reports_bad_journal(tmp_path, capsys):
    from repro.cli import main

    path = tmp_path / "bad.jsonl"
    path.write_text('{"not a journal', encoding="utf-8")
    assert main(["verify", "replay", str(path)]) == 2
    assert "cannot replay" in capsys.readouterr().err

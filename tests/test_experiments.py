"""Tests for the experiment runners (E1..E9) at reduced horizons."""

import math

import pytest

from repro.experiments import (
    EXPERIMENTS,
    run_e1_power_trace,
    run_e2_throughput_penalty,
    run_e3_tech_nodes,
    run_e4_adaptivity,
    run_e5_test_power_share,
    run_e6_vf_coverage,
    run_e7_mapping,
    run_e8_detection_latency,
    run_e9_pid_ablation,
    run_experiment,
)
from repro.experiments.result import ExperimentResult

H = 15_000.0  # short horizon for CI-speed experiment smoke runs


def check_shape(result: ExperimentResult, experiment_id: str):
    assert result.experiment_id == experiment_id
    assert result.rows
    for row in result.rows:
        assert len(row) == len(result.headers)
    rendered = result.render()
    assert experiment_id in rendered
    assert result.title in rendered


def test_registry_contains_all_experiments():
    expected = {f"E{i}" for i in range(1, 12)} | {f"A{i}" for i in range(1, 9)}
    assert set(EXPERIMENTS) == expected


def test_run_experiment_dispatch():
    result = run_experiment("E2", horizon_us=H)
    assert result.experiment_id == "E2"


def test_run_experiment_unknown():
    with pytest.raises(KeyError, match="E2"):
        run_experiment("E42")


def test_e1_shape_and_budget_honoured():
    result = run_e1_power_trace(horizon_us=H)
    check_shape(result, "E1")
    rows = {r[0]: r for r in result.rows}
    # power-aware violation rate must be zero; series present for both.
    assert rows["power-aware"][3] == 0.0
    assert "power.total[power-aware]" in result.series
    assert "power.test[unaware]" in result.series


def test_e2_proposed_penalty_small():
    result = run_e2_throughput_penalty(horizon_us=H)
    check_shape(result, "E2")
    assert result.scalars["proposed_penalty_pct"] < 1.0
    rows = {r[0]: r for r in result.rows}
    assert rows["none"][2] == 0.0  # baseline penalty is zero by construction
    # the power-unaware baseline pays more than the proposed scheduler
    assert rows["unaware"][2] > rows["power-aware"][2]


def test_e3_dark_fraction_monotonic():
    result = run_e3_tech_nodes(horizon_us=H, nodes=("45nm", "16nm"))
    check_shape(result, "E3")
    rows = {r[0]: r for r in result.rows}
    assert rows["45nm"][1] > rows["16nm"][1]  # lit fraction shrinks
    assert result.scalars["worst_penalty_pct"] < 3.0


def test_e4_positive_adaptivity():
    result = run_e4_adaptivity(horizon_us=30_000.0)
    check_shape(result, "E4")
    assert result.scalars["pearson_busy_vs_tests"] > 0.2
    # Q4 (busiest quartile) is tested at least as often as Q1.
    rows = {r[0]: r for r in result.rows}
    assert rows["Q4"][2] >= rows["Q1"][2]


def test_e5_share_small():
    result = run_e5_test_power_share(horizon_us=H, rates=(4.0, 8.0))
    check_shape(result, "E5")
    assert 0.0 < result.scalars["max_share"] < 0.10


def test_e6_rotate_covers_more_levels():
    result = run_e6_vf_coverage(horizon_us=H)
    check_shape(result, "E6")
    assert (
        result.scalars["levels_covered_rotate"]
        > result.scalars["levels_covered_nominal"]
    )


def test_e7_mapping_rows():
    result = run_e7_mapping(horizon_us=H, seeds=(11,))
    check_shape(result, "E7")
    mappers = {r[0] for r in result.rows}
    assert mappers == {"contiguous", "scatter", "random", "mappro", "test-aware"}
    rows = {r[0]: r for r in result.rows}
    # locality: test-aware stays near contiguous hops, well below random
    assert rows["test-aware"][2] < rows["random"][2]


def test_e8_detection_ordering():
    result = run_e8_detection_latency(
        horizon_us=30_000.0, seeds=(3, 7), hazard_per_us=5e-6
    )
    check_shape(result, "E8")
    rows = {r[0]: r for r in result.rows}
    # no-test never detects anything
    assert rows["none"][2] == 0
    assert math.isnan(rows["none"][4])
    # schedulers that test do detect something across seeds
    assert rows["power-aware"][2] > 0


def test_e9_pid_beats_worst_case():
    result = run_e9_pid_ablation(horizon_us=H)
    check_shape(result, "E9")
    assert result.scalars["pid_boost_over_worst_case_pct"] > 43.0
    rows = {r[0]: r for r in result.rows}
    assert rows["pid"][3] == 0.0  # no violations


def test_result_row_dicts():
    result = run_e2_throughput_penalty(horizon_us=H)
    dicts = result.row_dicts()
    assert len(dicts) == len(result.rows)
    assert all(set(d) == set(result.headers) for d in dicts)


def test_result_to_csv():
    result = run_e2_throughput_penalty(horizon_us=H)
    text = result.to_csv()
    lines = text.strip().splitlines()
    assert lines[0].startswith("scheduler,")
    assert len(lines) == len(result.rows) + 1


def test_result_series_csv():
    result = run_e1_power_trace(horizon_us=H)
    text = result.series_csv()
    assert "power.total[power-aware]" in text.splitlines()[0]


def test_result_series_csv_empty_raises():
    from repro.experiments.result import ExperimentResult

    empty = ExperimentResult("EX", "t", ["a"], [[1]])
    with pytest.raises(ValueError):
        empty.series_csv()

"""Tests for the extension experiment (E10) and ablations (A1..A6)."""

import pytest

from repro.experiments import (
    run_a1_criticality_weights,
    run_a2_guard_band,
    run_a3_test_concurrency,
    run_a4_preemption,
    run_a5_thermal_guard,
    run_a6_variation,
    run_e10_lifetime,
    run_experiment,
)

H = 12_000.0


def test_dispatch_reaches_ablations():
    result = run_experiment("A4", horizon_us=H)
    assert result.experiment_id == "A4"


def test_e10_lifetime_structure():
    result = run_e10_lifetime(horizon_us=H, seeds=(11,))
    mappers = [row[0] for row in result.rows]
    assert mappers == ["contiguous", "scatter", "test-aware"]
    for row in result.rows:
        assert row[1] > 0          # max stress accrued
        assert row[2] >= 1.0       # imbalance is max/mean
        assert 0.0 < row[3] <= 1.0  # reliability is a probability
        assert row[4] > 0          # finite expected lifetime
    assert "lifetime_gain_pct" in result.scalars


def test_e10_scatter_wears_worst():
    result = run_e10_lifetime(horizon_us=H, seeds=(11,))
    rows = {r[0]: r for r in result.rows}
    # Scatter concentrates stress (low-id cores always chosen first).
    assert rows["scatter"][2] > rows["test-aware"][2]


def test_a1_variants_present_and_gating_orders_test_counts():
    result = run_a1_criticality_weights(horizon_us=H)
    rows = {r[0]: r for r in result.rows}
    assert set(rows) == {"stress-only", "balanced", "time-only"}
    # Stress gating admits the fewest tests, time-only the most; the
    # adaptivity-correlation ordering needs the full horizon and is
    # asserted by the A1 benchmark instead.
    assert rows["stress-only"][1] <= rows["balanced"][1] <= rows["time-only"][1]
    for name in rows:
        assert f"corr[{name}]" in result.scalars


def test_a2_guard_band_monotone_tendencies():
    result = run_a2_guard_band(horizon_us=H, fractions=(0.0, 0.1))
    rows = result.rows
    # A bigger guard band cannot raise average power.
    assert rows[1][2] <= rows[0][2] + 1e-6


def test_a3_more_slots_more_tests():
    result = run_a3_test_concurrency(horizon_us=H, caps=(1, 8))
    rows = {r[0]: r for r in result.rows}
    assert rows[8][1] >= rows[1][1]


def test_a4_abort_cheaper_than_reserve():
    result = run_a4_preemption(horizon_us=H)
    assert (
        result.scalars["abort_penalty_pct"]
        <= result.scalars["reserve_penalty_pct"] + 1e-9
    )
    rows = {r[0]: r for r in result.rows}
    assert rows["reserve"][3] == 0   # reserved sessions are never aborted
    assert rows["abort"][3] >= 0


def test_a5_thermal_guard_defers_tests():
    result = run_a5_thermal_guard(horizon_us=H, margins=(0.0, 40.0))
    rows = result.rows
    # A huge margin (40 C of 50 C headroom) must suppress some tests.
    assert rows[1][2] <= rows[0][2]
    assert all(row[1] > 0 for row in rows)  # peak temperature recorded


def test_a6_variation_claims_hold():
    result = run_a6_variation(horizon_us=H)
    rows = {r[0]: r for r in result.rows}
    assert set(rows) == {"uniform-die", "varied-die"}
    # Headline safety claim survives variation.
    assert rows["varied-die"][4] == 0.0
    assert result.scalars["penalty[varied-die]"] < 2.0


def test_ablations_render():
    for runner in (run_a2_guard_band, run_a3_test_concurrency):
        result = runner(horizon_us=H)
        text = result.render()
        assert result.experiment_id in text


def test_a7_priorities_cut_hard_rt_waiting():
    from repro.experiments import run_a7_rt_priorities

    result = run_a7_rt_priorities(horizon_us=20_000.0)
    rows = {(r[0], r[1]): r for r in result.rows}
    assert set(r[0] for r in result.rows) == {"fifo", "priorities"}
    assert (
        rows[("priorities", "hard-rt")][2] <= rows[("fifo", "hard-rt")][2]
    )
    assert result.scalars["hard_rt_wait_speedup"] >= 1.0


def test_a8_noc_models_agree():
    from repro.experiments import run_a8_noc_fidelity

    result = run_a8_noc_fidelity(horizon_us=H)
    assert result.scalars["throughput_delta_pct"] < 5.0
    assert {r[0] for r in result.rows} == {"analytic", "queued"}

"""Cross-cutting property-based tests on system invariants.

These use hypothesis to drive the integrated machinery with randomised
structure and assert the invariants the reproduction's claims rest on:
work conservation under DVFS re-timing, placement validity, budget
arithmetic, and end-state consistency of full simulations.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.aging.model import AgingModel
from repro.core.executor import ExecutionEngine
from repro.noc.model import NocModel
from repro.noc.topology import Mesh
from repro.platform.chip import Chip
from repro.platform.core import CoreState
from repro.power.meter import PowerMeter
from repro.sim.engine import Simulator
from repro.workload.application import ApplicationGraph, ApplicationInstance
from repro.workload.generator import PROFILE_PRESETS, TaskGraphGenerator
from repro.workload.task import Task


def build_engine(chip):
    sim = Simulator()
    mesh = Mesh(chip.width, chip.height)
    noc = NocModel(mesh)
    meter = PowerMeter(chip)
    engine = ExecutionEngine(sim, chip, noc, meter, AgingModel(chip.node))
    return sim, engine, meter


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_any_generated_app_executes_to_completion(seed):
    """Every generated DAG runs to completion and frees all cores."""
    chip = Chip.build(6, 6)
    sim, engine, meter = build_engine(chip)
    gen = TaskGraphGenerator(random.Random(seed))
    graph = gen.generate(PROFILE_PRESETS["medium"])
    app = ApplicationInstance(1, graph, 0.0)
    order = graph.topo_order
    placement = {task_id: i for i, task_id in enumerate(order)}
    finished = []
    engine.on_app_finished.append(lambda a, now: finished.append(a.app_id))
    engine.admit(app, placement)
    sim.run()
    assert finished == [1]
    assert app.is_finished()
    assert all(core.owner_app is None for core in chip)
    assert all(core.state is CoreState.IDLE for core in chip)
    # Power fully returned to the gated-idle floor.
    assert meter.breakdown().workload == 0.0
    assert meter.noc_power == pytest.approx(0.0)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=0, max_value=1000),
    st.lists(
        st.tuples(
            st.floats(min_value=0.05, max_value=0.95),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=1,
        max_size=6,
        unique_by=lambda pair: pair[0],
    ),
)
def test_dvfs_retiming_conserves_work(seed, switches):
    """Arbitrary level switches: executed ops always equal task ops.

    Duration under switching must equal the piecewise sum of segment
    durations, never losing or duplicating operations.
    """
    chip = Chip.build(2, 2)
    sim, engine, _ = build_engine(chip)
    ops = 50_000.0
    graph = ApplicationGraph("single", [Task(0, ops=ops)], [])
    app = ApplicationInstance(1, graph, 0.0)
    finish_times = []
    engine.on_app_finished.append(lambda a, now: finish_times.append(now))
    engine.admit(app, {0: 0})
    core = chip.core(0)

    nominal_duration = ops / chip.vf_table.max_level.speed
    ordered = sorted(switches, key=lambda pair: pair[0])
    for fraction, level_index in ordered:
        at = fraction * nominal_duration
        level = chip.vf_table[level_index]

        def switch(lvl=level):
            if core.is_busy():
                engine.change_level(core, lvl)

        sim.at(at, switch)
    sim.run()
    assert len(finish_times) == 1
    # Replay the segment arithmetic independently.
    events = [
        (f * nominal_duration, chip.vf_table[i].speed) for f, i in ordered
    ]
    t = 0.0
    speed = chip.vf_table.max_level.speed
    remaining = ops
    for at, new_speed in events:
        if at >= t + remaining / speed:
            break
        remaining -= (at - t) * speed
        t = at
        speed = new_speed
    expected = t + remaining / speed
    assert finish_times[0] == pytest.approx(expected, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_full_system_invariants_hold(seed):
    """Short full-system runs keep their conservation invariants."""
    from tests.conftest import small_system_config
    from repro.core.system import ManycoreSystem

    config = small_system_config(
        horizon_us=4_000.0,
        profile_names=("small",),
        profile_weights=(1.0,),
        seed=seed,
        min_test_interval_us=500.0,
    )
    system = ManycoreSystem(config)
    result = system.run()
    m = result.metrics
    assert m.apps_arrived >= m.apps_admitted >= m.apps_completed
    assert result.metrics.audit.violation_rate == 0.0  # power-aware default
    # Cores are in exactly one consistent state.
    for core in system.chip:
        states = [core.is_idle(), core.is_busy(), core.is_testing(), core.is_faulty()]
        assert sum(states) == 1
        if core.is_busy():
            assert system.executor.execution_on(core) is not None
    # Test accounting is self-consistent.
    assert result.test_stats.started == (
        result.test_stats.completed
        + result.test_stats.aborted
        + len(system.runner.active_sessions())
    )


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=1000),
)
def test_mapping_placements_always_disjoint_across_apps(width, height, seed):
    """Two sequentially mapped apps never share a core."""
    from repro.mapping.base import MappingContext
    from repro.mapping.baselines import ContiguousMapper

    chip = Chip.build(width, height)
    mesh = Mesh(width, height)
    gen = TaskGraphGenerator(random.Random(seed))
    mapper = ContiguousMapper()
    used = set()
    for app_id in (1, 2):
        graph = gen.generate(PROFILE_PRESETS["small"])
        app = ApplicationInstance(app_id, graph, 0.0)
        available = [c for c in chip.free_cores()]
        ctx = MappingContext(chip, mesh, 0.0, available)
        placement = mapper.map_application(app, ctx)
        if placement is None:
            assert len(graph) > len(available)
            continue
        cores = set(placement.values())
        assert not (cores & used)
        used |= cores
        for core_id in cores:
            chip.core(core_id).owner_app = app_id

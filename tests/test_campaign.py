"""Tests for the fault-injection campaign subsystem.

The two contract-level properties pinned here:

* **resume identity** — kill a campaign partway, resume it, and the
  aggregate digest is byte-identical to an uninterrupted run (fixed and
  sequential mode);
* **crash tolerance** — a worker exception, a dead worker process or a
  timed-out run loses no completed results: the campaign completes with
  the bad point quarantined and attributed to its config digest.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

import pytest

from repro.campaign import (
    CampaignInterrupted,
    CampaignSpec,
    FailureLog,
    ResultStore,
    RetryPolicy,
    RobustExecutor,
    aggregate_digest,
    build_report,
    default_worker,
    plan_missing,
    run_campaign,
)
from repro.campaign.spec import cell_label
from repro.cli import main
from repro.core.system import SystemConfig
from repro.experiments.parallel import RunFailed, run_many
from repro.obs.provenance import config_digest

#: Fast 4x4 base with fault injection on: one run is ~0.1-0.2 s.
BASE = {
    "width": 4,
    "height": 4,
    "horizon_us": 3000.0,
    "arrival_rate_per_ms": 8.0,
    "fault_hazard_per_us": 2e-4,
}

NO_BACKOFF = RetryPolicy(max_attempts=2, backoff_s=0.0)


def small_spec(**overrides) -> CampaignSpec:
    data = {
        "name": "test",
        "base": BASE,
        "grid": {"test_policy": ["power-aware", "none"]},
        "seeds": {"start": 1, "count": 2},
    }
    data.update(overrides)
    return CampaignSpec.from_dict(data)


# ----------------------------------------------------------------------
# Spec
# ----------------------------------------------------------------------
def test_spec_cross_product_and_point_digests():
    spec = small_spec()
    points = spec.fixed_points()
    assert len(points) == 4  # 2 policies x 2 seeds
    assert len({p.digest for p in points}) == 4
    # Digests are a pure function of the config: re-enumeration agrees.
    again = spec.fixed_points()
    assert [p.digest for p in points] == [p.digest for p in again]
    assert points[0].digest == config_digest(points[0].config)


def test_spec_config_resolution_applies_base_cell_seed():
    spec = small_spec()
    point = spec.fixed_points()[-1]
    assert point.config.width == 4
    assert point.config.test_policy == "none"
    assert point.config.seed == 2
    assert point.config.fault_hazard_per_us == pytest.approx(2e-4)


def test_spec_nested_base_override():
    spec = small_spec(base=dict(BASE, aging={"base_rate": 0.125}))
    config = spec.fixed_points()[0].config
    assert config.aging.base_rate == pytest.approx(0.125)


def test_spec_json_round_trip_preserves_digest(tmp_path):
    spec = small_spec(
        stop={"target_half_width": 0.1, "min_runs": 2, "max_runs": 8,
              "batch": 2},
    )
    path = tmp_path / "spec.json"
    spec.save(str(path))
    loaded = CampaignSpec.load(str(path))
    # JSON serialisation sorts keys, so tuple order may differ; the
    # canonical form and the digest are the identity contract.
    assert loaded.to_dict() == spec.to_dict()
    assert loaded.spec_digest() == spec.spec_digest()
    assert [p.digest for p in loaded.fixed_points()] == [
        p.digest for p in spec.fixed_points()
    ]


@pytest.mark.parametrize(
    "mutation",
    [
        {"name": ""},
        {"base": {"not_a_field": 1}},
        {"grid": {"tdp_w": []}},
        {"grid": {"seed": [1, 2]}},
        {"seeds": {"start": 1, "count": 0}},
        {"stop": {"target_half_width": 0.0}},
        {"stop": {"target_half_width": 0.1, "min_runs": 4, "max_runs": 2}},
        {"stop": {"target_half_width": 0.1, "method": "bogus"}},
        {"bogus_key": 1},
    ],
)
def test_spec_validation_rejects(mutation):
    data = {
        "name": "test",
        "base": BASE,
        "grid": {"test_policy": ["none"]},
        "seeds": {"start": 1, "count": 2},
    }
    data.update(mutation)
    with pytest.raises((ValueError, TypeError)):
        CampaignSpec.from_dict(data)


def test_cell_label():
    assert cell_label(()) == "default"
    assert cell_label((("tdp_w", 40.0),)) == "tdp_w=40.0"


def test_stop_rule_evaluation_ladder():
    spec = small_spec(
        stop={"target_half_width": 0.1, "min_runs": 3, "max_runs": 10,
              "batch": 4},
    )
    assert spec.stop.evaluation_sizes() == [3, 7, 10]


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
def _fake_record(digest: str, seed: int = 1) -> dict:
    return {
        "schema": 1,
        "digest": digest,
        "cell": [],
        "seed": seed,
        "faults": [],
        "per_level_tests": {},
        "n_levels": 8,
        "summary": {"x": 1.0},
    }


def test_store_append_load_round_trip(tmp_path):
    store = ResultStore(str(tmp_path / "results.jsonl"))
    assert store.load() == {}
    store.append(_fake_record("a"))
    store.append(_fake_record("b"))
    records = store.load()
    assert set(records) == {"a", "b"}
    assert records["a"]["seed"] == 1


def test_store_tolerates_torn_final_line(tmp_path):
    path = tmp_path / "results.jsonl"
    store = ResultStore(str(path))
    store.append(_fake_record("a"))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"digest": "b", "truncated')  # crash mid-write
    assert set(store.load()) == {"a"}


def test_store_rejects_mid_file_corruption(tmp_path):
    path = tmp_path / "results.jsonl"
    store = ResultStore(str(path))
    store.append(_fake_record("a"))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write("garbage\n")
    store.append(_fake_record("b"))
    with pytest.raises(ValueError, match="corrupt record"):
        store.load()


def test_aggregate_digest_order_independent():
    a, b = _fake_record("a"), _fake_record("b", seed=2)
    assert aggregate_digest([a, b]) == aggregate_digest([b, a])
    assert aggregate_digest([a, b]) != aggregate_digest([a])


def test_failure_log_quarantine_filtering(tmp_path):
    log = FailureLog(str(tmp_path / "failures.jsonl"))
    log.append("a", 1, [], 1, "boom", False)
    log.append("a", 1, [], 2, "boom", True)
    log.append("b", 2, [], 1, "boom", True)
    assert {e["digest"] for e in log.quarantined()} == {"a", "b"}
    # a later resume completed point "a": no longer quarantined
    assert {e["digest"] for e in log.quarantined({"a": {}})} == {"b"}


# ----------------------------------------------------------------------
# Executor: retry, quarantine, crash tolerance
# ----------------------------------------------------------------------
def test_serial_retry_then_success():
    spec = small_spec(grid={}, seeds={"start": 1, "count": 3})
    points = spec.fixed_points()
    attempts: dict = {}

    def flaky_worker(payload):
        point, timeout_s = payload
        n = attempts.setdefault(point.digest, 0)
        attempts[point.digest] = n + 1
        if point.seed == 2 and n < 2:
            return ("err", point.digest, "RuntimeError: injected")
        return default_worker(payload)

    records = {}
    executor = RobustExecutor(
        jobs=1, retry=RetryPolicy(max_attempts=3, backoff_s=0.0),
        worker=flaky_worker,
    )
    stats = executor.run(
        points, on_record=lambda p, r: records.__setitem__(p.digest, r)
    )
    assert stats.completed == 3
    assert stats.retried == 2
    assert not stats.quarantined
    assert len(records) == 3


def test_serial_quarantine_keeps_completed_results():
    spec = small_spec(grid={}, seeds={"start": 1, "count": 3})
    points = spec.fixed_points()
    bad = points[1]

    def broken_worker(payload):
        point, timeout_s = payload
        if point.digest == bad.digest:
            return ("err", point.digest, "RuntimeError: always broken")
        return default_worker(payload)

    records = {}
    failures = []
    executor = RobustExecutor(jobs=1, retry=NO_BACKOFF, worker=broken_worker)
    stats = executor.run(
        points,
        on_record=lambda p, r: records.__setitem__(p.digest, r),
        on_failure=lambda p, attempt, err, q: failures.append(
            (p.digest, attempt, err, q)
        ),
    )
    # Both healthy points completed; the bad one is quarantined and
    # attributed to its digest, with the full attempt history logged.
    assert stats.completed == 2
    assert len(stats.quarantined) == 1
    assert stats.quarantined[0].digest == bad.digest
    assert stats.quarantined[0].attempts == NO_BACKOFF.max_attempts
    assert bad.digest not in records and len(records) == 2
    assert [f[0] for f in failures] == [bad.digest] * 2
    assert failures[-1][3] is True  # final attempt marked quarantined


def test_retry_policy_backoff_bounded():
    policy = RetryPolicy(
        max_attempts=5, backoff_s=0.5, backoff_factor=2.0, max_backoff_s=1.5
    )
    assert policy.delay_s(1) == pytest.approx(0.5)
    assert policy.delay_s(2) == pytest.approx(1.0)
    assert policy.delay_s(3) == pytest.approx(1.5)  # capped
    assert policy.delay_s(10) == pytest.approx(1.5)
    assert RetryPolicy(backoff_s=0.0).delay_s(3) == 0.0


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_s=-1.0)


# Module-level workers for the pooled tests (must be picklable).
def _fail_seed2_worker(payload):
    point, timeout_s = payload
    if point.seed == 2:
        return ("err", point.digest, "RuntimeError: injected pool failure")
    return default_worker(payload)


def _exit_seed2_worker(payload):
    point, timeout_s = payload
    if point.seed == 2:
        # Give co-inflight healthy points time to finish first: a pool
        # break charges every in-flight point an attempt (the supervisor
        # cannot tell who crashed), so an instant exit could repeatedly
        # charge the same innocent point until it quarantines — a real
        # but rare race this test is not about.
        time.sleep(0.5)
        os._exit(17)  # hard worker death -> BrokenProcessPool
    return default_worker(payload)


def test_pool_worker_exception_is_quarantined_and_attributed():
    spec = small_spec(grid={}, seeds={"start": 1, "count": 3})
    points = spec.fixed_points()
    bad_digest = next(p.digest for p in points if p.seed == 2)
    records = {}
    executor = RobustExecutor(
        jobs=2, retry=NO_BACKOFF, worker=_fail_seed2_worker
    )
    stats = executor.run(
        points, on_record=lambda p, r: records.__setitem__(p.digest, r)
    )
    assert stats.completed == 2
    assert len(records) == 2
    assert [q.digest for q in stats.quarantined] == [bad_digest]
    assert "injected pool failure" in stats.quarantined[0].errors[-1]


def test_pool_survives_hard_worker_death():
    spec = small_spec(grid={}, seeds={"start": 1, "count": 3})
    points = spec.fixed_points()
    bad_digest = next(p.digest for p in points if p.seed == 2)
    records = {}
    executor = RobustExecutor(
        jobs=2,
        retry=RetryPolicy(max_attempts=3, backoff_s=0.0),
        worker=_exit_seed2_worker,
    )
    stats = executor.run(
        points, on_record=lambda p, r: records.__setitem__(p.digest, r)
    )
    # The dying point quarantines; every healthy point completes even
    # though the pool it was sharing broke underneath it.
    assert len(records) == 2
    assert bad_digest not in records
    assert any(q.digest == bad_digest for q in stats.quarantined)


@pytest.mark.skipif(
    not hasattr(__import__("signal"), "SIGALRM"),
    reason="per-run timeout needs SIGALRM",
)
def test_pool_timeout_quarantines_slow_run():
    # epoch_us=0.005 makes the control loop ~6 orders of magnitude
    # denser: the run cannot finish within the timeout.
    spec = small_spec(
        grid={"epoch_us": [100.0, 0.005]}, seeds={"start": 1, "count": 1}
    )
    points = spec.fixed_points()
    slow_digest = next(
        p.digest for p in points if p.config.epoch_us == 0.005
    )
    records = {}
    executor = RobustExecutor(
        jobs=2, retry=RetryPolicy(max_attempts=1, backoff_s=0.0),
        timeout_s=0.4,
    )
    t0 = time.monotonic()
    stats = executor.run(
        points, on_record=lambda p, r: records.__setitem__(p.digest, r)
    )
    assert time.monotonic() - t0 < 30.0
    assert len(records) == 1
    assert [q.digest for q in stats.quarantined] == [slow_digest]
    assert "Timeout" in stats.quarantined[0].errors[-1]


# ----------------------------------------------------------------------
# Resume identity (the headline contract)
# ----------------------------------------------------------------------
def test_fixed_campaign_resume_identity(tmp_path):
    spec = small_spec()
    interrupted_dir = str(tmp_path / "interrupted")
    straight_dir = str(tmp_path / "straight")
    with pytest.raises(CampaignInterrupted):
        run_campaign(
            interrupted_dir, spec=spec, jobs=2, retry=NO_BACKOFF,
            interrupt_after=2,
        )
    # The kill lost nothing that was checkpointed...
    partial = ResultStore(
        os.path.join(interrupted_dir, "results.jsonl")
    ).load()
    assert len(partial) == 2
    # ...and resuming completes the campaign with a byte-identical
    # aggregate to the uninterrupted control run.
    resumed = run_campaign(
        interrupted_dir, resume=True, jobs=2, retry=NO_BACKOFF
    )
    straight = run_campaign(
        straight_dir, spec=spec, jobs=1, retry=NO_BACKOFF
    )
    assert resumed.aggregate == straight.aggregate
    assert resumed.n_completed == straight.n_completed == 4
    assert json.load(
        open(os.path.join(interrupted_dir, "manifest.json"))
    )["aggregate_digest"] == resumed.aggregate


def test_sequential_campaign_resume_identity(tmp_path):
    spec = small_spec(
        grid={},
        base=dict(BASE, fault_hazard_per_us=3e-4),
        seeds={"start": 1, "count": 1},
        stop={"target_half_width": 0.02, "min_runs": 2, "max_runs": 4,
              "batch": 2},
    )
    interrupted_dir = str(tmp_path / "interrupted")
    straight_dir = str(tmp_path / "straight")
    with pytest.raises(CampaignInterrupted):
        run_campaign(
            interrupted_dir, spec=spec, jobs=2, retry=NO_BACKOFF,
            interrupt_after=1,
        )
    resumed = run_campaign(
        interrupted_dir, resume=True, jobs=2, retry=NO_BACKOFF
    )
    straight = run_campaign(
        straight_dir, spec=spec, jobs=1, retry=NO_BACKOFF
    )
    assert resumed.aggregate == straight.aggregate
    assert resumed.n_completed == straight.n_completed


def test_sequential_stopping_rule_bounds_runs(tmp_path):
    base = dict(BASE, fault_hazard_per_us=3e-4)
    loose = small_spec(
        name="loose", grid={}, base=base, seeds={"start": 1, "count": 1},
        stop={"target_half_width": 0.45, "min_runs": 2, "max_runs": 6,
              "batch": 2},
    )
    tight = small_spec(
        name="tight", grid={}, base=base, seeds={"start": 1, "count": 1},
        stop={"target_half_width": 0.005, "min_runs": 2, "max_runs": 4,
              "batch": 2},
    )
    r_loose = run_campaign(
        str(tmp_path / "loose"), spec=loose, retry=NO_BACKOFF
    )
    r_tight = run_campaign(
        str(tmp_path / "tight"), spec=tight, retry=NO_BACKOFF
    )
    assert r_loose.n_completed == 2      # satisfied at min_runs
    assert r_tight.n_completed == 4      # ran to max_runs


def test_run_rejects_dir_with_results_or_other_spec(tmp_path):
    spec = small_spec(seeds={"start": 1, "count": 1}, grid={})
    cdir = str(tmp_path / "c")
    run_campaign(cdir, spec=spec, retry=NO_BACKOFF)
    with pytest.raises(ValueError, match="use resume"):
        run_campaign(cdir, spec=spec, retry=NO_BACKOFF)
    other = small_spec(name="other", seeds={"start": 1, "count": 1}, grid={})
    with pytest.raises(ValueError, match="different spec"):
        run_campaign(cdir, spec=other, retry=NO_BACKOFF)


def test_campaign_completes_around_quarantined_point(tmp_path):
    spec = small_spec(grid={}, seeds={"start": 1, "count": 3})
    report = run_campaign(
        str(tmp_path / "c"), spec=spec, jobs=2, retry=NO_BACKOFF,
        worker=_fail_seed2_worker,
    )
    assert report.n_completed == 2
    assert len(report.quarantined) == 1
    assert report.quarantined[0]["seed"] == 2
    # failures.jsonl attributes every attempt
    entries = FailureLog(
        str(tmp_path / "c" / "failures.jsonl")
    ).load()
    assert len(entries) == NO_BACKOFF.max_attempts
    assert all("injected pool failure" in e["error"] for e in entries)


def test_plan_missing_is_pure_and_shrinks(tmp_path):
    spec = small_spec()
    assert len(plan_missing(spec, {})) == 4
    cdir = str(tmp_path / "c")
    with pytest.raises(CampaignInterrupted):
        run_campaign(
            cdir, spec=spec, retry=NO_BACKOFF, interrupt_after=3
        )
    records = ResultStore(os.path.join(cdir, "results.jsonl")).load()
    missing = plan_missing(spec, records)
    assert len(missing) == 1
    assert all(p.digest not in records for p in missing)


def test_report_rows_full_grid_even_when_partial(tmp_path):
    spec = small_spec()
    report = build_report(spec, {})
    # 2 cells + ALL row, all zero-run
    assert len(report.rows) == 3
    assert all(row[1] == 0 for row in report.rows)
    assert report.n_completed == 0


# ----------------------------------------------------------------------
# run_many failure attribution (satellite)
# ----------------------------------------------------------------------
def _bogus_config() -> SystemConfig:
    # Passes __post_init__ but explodes inside run_system's wiring.
    return dataclasses.replace(
        SystemConfig(horizon_us=2000.0), noc_mode="bogus"
    )


def test_run_many_serial_failure_attributed():
    good = SystemConfig(horizon_us=2000.0, width=4, height=4)
    bad = _bogus_config()
    with pytest.raises(RunFailed) as excinfo:
        run_many([good, bad])
    assert excinfo.value.index == 1
    assert excinfo.value.digest == config_digest(bad)
    assert "noc_mode" in excinfo.value.error


def test_run_many_parallel_failure_attributed():
    good = SystemConfig(horizon_us=2000.0, width=4, height=4)
    bad = _bogus_config()
    with pytest.raises(RunFailed) as excinfo:
        run_many([bad, good, good], jobs=2)
    assert excinfo.value.index == 0
    assert excinfo.value.digest == config_digest(bad)


@pytest.mark.parametrize(
    "kwargs, exc, fragment",
    [
        ({"jobs": -1}, ValueError, "jobs must be non-negative"),
        ({"jobs": True}, TypeError, "jobs must be an int"),
        ({"jobs": 2.5}, TypeError, "jobs must be an int"),
        ({"jobs": "4"}, TypeError, "jobs must be an int"),
        ({"batch_size": 0}, ValueError, "batch_size must be >= 1"),
        ({"batch_size": -3}, ValueError, "batch_size must be >= 1"),
        ({"batch_size": False}, TypeError, "batch_size must be an int"),
        ({"batch_size": 1.0}, TypeError, "batch_size must be an int"),
    ],
)
def test_run_many_rejects_nonsense_knobs(kwargs, exc, fragment):
    # Validation fires before any work: even an empty sweep rejects.
    with pytest.raises(exc, match=fragment):
        run_many([], **kwargs)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_campaign_run_resume_report(tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(
        json.dumps(
            {
                "name": "cli",
                "base": BASE,
                "grid": {"test_policy": ["power-aware"]},
                "seeds": {"start": 1, "count": 2},
            }
        )
    )
    cdir = str(tmp_path / "camp")
    rc = main(
        ["campaign", "run", str(spec_path), "--dir", cdir,
         "--backoff-s", "0", "--interrupt-after", "1"]
    )
    assert rc == 3  # simulated crash
    rc = main(["campaign", "resume", cdir, "--backoff-s", "0"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "campaign cli" in out
    assert "aggregate digest" in out
    rc = main(["campaign", "report", cdir])
    assert rc == 0
    assert os.path.exists(os.path.join(cdir, "manifest.json"))


def test_cli_campaign_report_missing_dir(tmp_path, capsys):
    rc = main(["campaign", "report", str(tmp_path / "nope")])
    assert rc == 2
    assert "cannot report" in capsys.readouterr().err


def test_cli_jobs_rejects_negative_at_parse_time(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["sweep", "tdp_w", "40,60", "--jobs", "-2"])
    assert excinfo.value.code == 2
    assert "jobs must be >= 0" in capsys.readouterr().err


def test_cli_jobs_rejects_non_integer(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["experiment", "E2", "--jobs", "two"])
    assert excinfo.value.code == 2
    assert "jobs must be an integer" in capsys.readouterr().err


@pytest.mark.parametrize("raw", ["0", "-2"])
def test_cli_batch_size_rejects_nonpositive(raw, capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["sweep", "tdp_w", "40,60", "--batch-size", raw])
    assert excinfo.value.code == 2
    assert "batch size must be >= 1" in capsys.readouterr().err


def test_cli_batch_size_rejects_non_integer(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["sweep", "tdp_w", "40,60", "--batch-size", "big"])
    assert excinfo.value.code == 2
    assert "batch size must be an integer" in capsys.readouterr().err

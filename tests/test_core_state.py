"""Tests for the per-core state record and busy-window accounting."""

import pytest

from repro.platform.core import BusyWindow, Core, CoreState
from repro.platform.dvfs import build_vf_table
from repro.platform.technology import get_node


@pytest.fixture
def level():
    return build_vf_table(get_node("16nm")).max_level


@pytest.fixture
def core(level):
    return Core(core_id=5, x=1, y=1, level=level)


# ----------------------------------------------------------------------
# BusyWindow
# ----------------------------------------------------------------------
def test_busy_window_accumulates_total():
    w = BusyWindow()
    w.add(0.0, 10.0)
    w.add(20.0, 25.0)
    assert w.total_busy == 15.0


def test_busy_in_clips_to_query_window():
    w = BusyWindow()
    w.add(0.0, 10.0)
    assert w.busy_in(5.0, 8.0) == pytest.approx(3.0)
    assert w.busy_in(5.0, 20.0) == pytest.approx(5.0)


def test_busy_in_empty_window():
    w = BusyWindow()
    assert w.busy_in(0.0, 10.0) == 0.0
    w.add(0.0, 5.0)
    assert w.busy_in(7.0, 7.0) == 0.0


def test_utilization_fraction():
    w = BusyWindow()
    w.add(0.0, 50.0)
    assert w.utilization(now=100.0, window=100.0) == pytest.approx(0.5)


def test_utilization_clips_window_at_time_zero():
    w = BusyWindow()
    w.add(0.0, 10.0)
    # Window of 100 at now=20 only spans [0, 20].
    assert w.utilization(now=20.0, window=100.0) == pytest.approx(0.5)


def test_utilization_rejects_bad_window():
    with pytest.raises(ValueError):
        BusyWindow().utilization(now=10.0, window=0.0)


def test_zero_length_interval_ignored():
    w = BusyWindow()
    w.add(5.0, 5.0)
    assert w.total_busy == 0.0


def test_reversed_interval_rejected():
    with pytest.raises(ValueError):
        BusyWindow().add(5.0, 4.0)


def test_overlapping_interval_rejected():
    w = BusyWindow()
    w.add(0.0, 10.0)
    with pytest.raises(ValueError):
        w.add(9.0, 12.0)


def test_prune_drops_old_intervals():
    w = BusyWindow()
    w.add(0.0, 10.0)
    w.add(20.0, 30.0)
    w.prune(horizon=15.0)
    assert w.busy_in(0.0, 30.0) == pytest.approx(10.0)
    # total_busy is lifetime accounting and unaffected by pruning
    assert w.total_busy == 20.0


# ----------------------------------------------------------------------
# Core
# ----------------------------------------------------------------------
def test_core_starts_idle(core):
    assert core.is_idle()
    assert not core.is_busy()
    assert not core.is_testing()
    assert not core.is_faulty()


def test_core_position(core):
    assert core.position == (1, 1)


def test_core_allocatable_rules(core):
    assert core.is_allocatable()
    core.owner_app = 3
    assert not core.is_allocatable()
    core.owner_app = None
    core.state = CoreState.FAULTY
    assert not core.is_allocatable()


def test_core_utilization_counts_closed_intervals(core):
    core.busy_window.add(0.0, 500.0)
    assert core.utilization(now=1000.0, window=1000.0) == pytest.approx(0.5)


def test_core_utilization_counts_open_interval(core):
    core.busy_window.add(0.0, 500.0)
    core.state = CoreState.BUSY
    core.busy_since = 800.0
    core.busy_until = 1200.0
    # closed 500 + open [800, 1000] = 700 over window 1000
    assert core.utilization(now=1000.0, window=1000.0) == pytest.approx(0.7)


def test_core_utilization_never_exceeds_one(core):
    core.busy_window.add(0.0, 1000.0)
    assert core.utilization(now=1000.0, window=1000.0) <= 1.0


def test_core_utilization_zero_at_time_zero(core):
    assert core.utilization(now=0.0, window=100.0) == 0.0


def test_fresh_core_has_no_test_history(core):
    assert core.tests_completed == 0
    assert core.last_test_end == 0.0
    assert core.tested_levels == set()
    assert core.level_last_test == {}
    assert core.stress_since_test == 0.0

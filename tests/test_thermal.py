"""Tests for the lumped RC thermal model."""

import pytest

from repro.platform.thermal import (
    ThermalModel,
    ThermalParameters,
    thermal_safe_power,
)


@pytest.fixture
def model(chip44):
    return ThermalModel(chip44)


def test_starts_at_ambient(model):
    assert model.hottest() == model.params.ambient_c
    assert model.headroom_c() == pytest.approx(
        model.params.limit_c - model.params.ambient_c
    )


def test_powered_core_heats_up(model):
    model.step({0: 3.0}, dt_us=1000.0)
    assert model.temperature(0) > model.params.ambient_c


def test_unpowered_cores_warm_only_via_neighbours(model):
    model.step({5: 3.0}, dt_us=50_000.0)
    # Direct neighbour of core 5 is warmer than a far corner.
    assert model.temperature(4) > model.temperature(15)


def test_cooling_back_to_ambient(model):
    model.step({0: 3.0}, dt_us=50_000.0)
    hot = model.temperature(0)
    model.step({}, dt_us=10 * model.params.tau_us)
    assert model.temperature(0) < hot
    assert model.temperature(0) == pytest.approx(model.params.ambient_c, abs=0.5)


def test_uniform_steady_state_closed_form(model):
    power = 2.0
    target = model.steady_state_uniform(power)
    model.step({i: power for i in range(16)}, dt_us=20 * model.params.tau_us)
    for i in range(16):
        assert model.temperature(i) == pytest.approx(target, rel=0.02)


def test_steady_state_independent_of_step_size(chip44):
    a = ThermalModel(chip44)
    from repro.platform.chip import Chip

    b = ThermalModel(Chip.build(4, 4))
    powers = {0: 3.0, 5: 2.0}
    total = 30_000.0
    a.step(powers, dt_us=total)
    for _ in range(30):
        b.step(powers, dt_us=total / 30)
    for i in range(16):
        assert a.temperature(i) == pytest.approx(b.temperature(i), rel=0.02)


def test_hottest_core_is_the_powered_one(model):
    model.step({7: 4.0}, dt_us=10_000.0)
    assert model.hottest_core_id() == 7


def test_peak_seen_is_monotone(model):
    model.step({0: 5.0}, dt_us=20_000.0)
    peak = model.peak_seen_c
    model.step({}, dt_us=100_000.0)  # cooling cannot lower the recorded peak
    assert model.peak_seen_c == peak


def test_over_limit_detection(model):
    # (limit - ambient) / r_self = 50/12 ≈ 4.2 W steady; 8 W must exceed it.
    model.step({i: 8.0 for i in range(16)}, dt_us=50 * model.params.tau_us)
    assert model.over_limit()


def test_reset(model):
    model.step({0: 5.0}, dt_us=10_000.0)
    model.reset()
    assert model.hottest() == model.params.ambient_c
    model.reset(60.0)
    assert model.hottest() == 60.0


def test_step_rejects_bad_dt(model):
    with pytest.raises(ValueError):
        model.step({}, dt_us=0.0)


def test_parameter_validation():
    with pytest.raises(ValueError):
        ThermalParameters(r_self_c_per_w=0.0)
    with pytest.raises(ValueError):
        ThermalParameters(c_j_per_c=-1.0)
    with pytest.raises(ValueError):
        ThermalParameters(limit_c=40.0, ambient_c=45.0)


def test_tau_formula():
    p = ThermalParameters(r_self_c_per_w=10.0, c_j_per_c=0.002)
    assert p.tau_us == pytest.approx(10.0 * 0.002 * 1e6)


# ----------------------------------------------------------------------
# Thermal Safe Power
# ----------------------------------------------------------------------
def test_tsp_decreases_with_more_active_cores(chip44):
    p = ThermalParameters()
    sparse = thermal_safe_power(chip44, p, active_cores=1)
    dense = thermal_safe_power(chip44, p, active_cores=16)
    assert sparse > dense


def test_tsp_dense_limit_is_self_path(chip44):
    p = ThermalParameters()
    dense = thermal_safe_power(chip44, p, active_cores=16)
    assert dense == pytest.approx((p.limit_c - p.ambient_c) / p.r_self_c_per_w)


def test_tsp_rejects_zero_cores(chip44):
    with pytest.raises(ValueError):
        thermal_safe_power(chip44, ThermalParameters(), active_cores=0)

"""Tests for repro.dse: spaces, Pareto math, surrogate pruning, search.

The load-bearing guarantees pinned here, matching docs/dse.md:

* the Pareto front is invariant under candidate permutations;
* threshold-0 surrogate pruning never drops an already-evaluated
  (cached) candidate — in particular not the true best one;
* a killed search resumes to a byte-identical ``front.json``
  (``front_digest`` and all).
"""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.campaign import CampaignSpec, cell_digest, freeze_cell
from repro.cli import main
from repro.dse import (
    OBJECTIVES,
    ChoiceParam,
    DseSpec,
    FloatParam,
    IntParam,
    PolynomialSurrogate,
    SearchInterrupted,
    SearchSpace,
    dominates,
    lexicographic_ranking,
    non_dominated_sort,
    normalize_columns,
    objective_vector,
    pareto_front_indices,
    polynomial_features,
    prune_candidates,
    run_search,
    weighted_sum_ranking,
    weighted_sum_scores,
)
from repro.dse.search import report_search


def small_space():
    return SearchSpace.from_list([
        {"field": "max_concurrent_tests", "type": "int", "low": 2, "high": 8},
        {"field": "guard_fraction", "type": "choice",
         "values": [0.0, 0.02, 0.05]},
        {"field": "min_test_interval_us", "type": "choice",
         "values": [1500.0, 2500.0]},
    ])


def small_spec(**overrides):
    data = {
        "name": "t",
        "base": {"width": 4, "height": 4, "horizon_us": 1200.0,
                 "arrival_rate_per_ms": 8.0, "fault_hazard_per_us": 2e-4},
        "space": small_space().to_list(),
        "objectives": ["throughput", "escapes", "power"],
        "seeds": {"start": 1, "count": 1},
        "evolve": {"population": 4, "generations": 2, "elites": 1},
        "surrogate": {"degree": 1, "min_points": 3, "threshold": 0.5},
    }
    data.update(overrides)
    return DseSpec.from_dict(data)


# ----------------------------------------------------------------------
# Search space
# ----------------------------------------------------------------------
def test_space_roundtrip_and_identity():
    space = small_space()
    assert SearchSpace.from_list(space.to_list()) == space
    rng = np.random.default_rng(7)
    candidate = space.sample(rng)
    assert set(candidate) == set(space.names)
    # Identity is the campaign cell digest of the resolved overrides.
    assert space.digest_of(candidate) == cell_digest(
        freeze_cell(candidate)
    )
    # Mutation always changes the candidate; crossover stays in-domain.
    mutated = space.mutate(candidate, rng, rate=0.5, scale=0.2)
    assert mutated != candidate
    other = space.sample(rng)
    child = space.crossover(candidate, other, rng)
    space.validate_candidate(child)


def test_space_rejects_bad_definitions():
    with pytest.raises(ValueError, match="unknown SystemConfig field"):
        SearchSpace.from_list(
            [{"field": "nope", "type": "int", "low": 0, "high": 1}]
        )
    with pytest.raises(ValueError, match="'seed' cannot be searched"):
        SearchSpace.from_list(
            [{"field": "seed", "type": "int", "low": 0, "high": 1}]
        )
    with pytest.raises(ValueError, match="duplicate space parameter"):
        SearchSpace.from_list([
            {"field": "tdp_w", "type": "float", "low": 1.0, "high": 2.0},
            {"field": "tdp_w", "type": "float", "low": 1.0, "high": 3.0},
        ])
    with pytest.raises(ValueError, match="unknown parameter type"):
        SearchSpace.from_list([{"field": "tdp_w", "type": "log"}])


def test_space_validation_and_encoding():
    space = small_space()
    with pytest.raises(ValueError, match="outside"):
        space.validate_candidate({
            "max_concurrent_tests": 99, "guard_fraction": 0.0,
            "min_test_interval_us": 1500.0,
        })
    with pytest.raises(ValueError, match="missing"):
        space.validate_candidate({"max_concurrent_tests": 4})
    good = space.validate_candidate({
        "max_concurrent_tests": 5, "guard_fraction": 0.02,
        "min_test_interval_us": 2500.0,
    })
    encoded = space.encode(good)
    assert encoded.shape == (space.encoded_width,)
    assert 0.0 <= encoded.min() and encoded.max() <= 1.0
    assert space.exhaustive_size() == 7 * 3 * 2


def test_float_param_makes_grid_infinite():
    space = SearchSpace(params=(
        IntParam("max_concurrent_tests", 2, 8),
        FloatParam("guard_fraction", 0.0, 0.1),
    ))
    assert space.exhaustive_size() is None
    assert ChoiceParam("mapper", ("contiguous", "scatter")).n_values == 2


# ----------------------------------------------------------------------
# Pareto / MCDM
# ----------------------------------------------------------------------
def test_dominates_semantics():
    senses = ["max", "min"]
    assert dominates((2.0, 1.0), (1.0, 1.0), senses)
    assert not dominates((1.0, 1.0), (1.0, 1.0), senses)
    assert not dominates((2.0, 2.0), (1.0, 1.0), senses)
    # None is always worst.
    assert dominates((1.0, 1.0), (None, 1.0), senses)
    assert not dominates((None, 0.0), (1.0, 1.0), senses)


def test_non_dominated_sort_ranks_layers():
    senses = ["max", "min"]
    vectors = [(3.0, 1.0), (2.0, 2.0), (1.0, 3.0), (2.5, 1.5), (3.0, 1.0)]
    ranks = non_dominated_sort(vectors, senses)
    assert ranks[0] == 0 and ranks[4] == 0     # duplicates tie on the front
    assert ranks[3] == 1                       # dominated by (3, 1) only
    assert pareto_front_indices(vectors, senses) == [0, 4]


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_front_invariant_under_permutation(data):
    """Permuting the candidate list never changes the front membership."""
    n = data.draw(st.integers(min_value=1, max_value=10))
    value = st.one_of(
        st.none(),
        st.floats(-10, 10, allow_nan=False, allow_infinity=False),
    )
    vectors = data.draw(
        st.lists(st.tuples(value, value, value), min_size=n, max_size=n)
    )
    perm = data.draw(st.permutations(range(n)))
    senses = ["max", "min", "min"]
    front = set(pareto_front_indices(vectors, senses))
    permuted_front = pareto_front_indices(
        [vectors[i] for i in perm], senses
    )
    assert {perm[j] for j in permuted_front} == front


def test_normalize_and_weighted_sum():
    senses = ["max", "min"]
    vectors = [(0.0, 10.0), (10.0, 0.0), (None, 5.0), (5.0, 5.0)]
    rows = normalize_columns(vectors, senses)
    assert rows[0] == [0.0, 0.0]
    assert rows[1] == [1.0, 1.0]
    assert rows[2][0] == 0.0            # None -> worst
    assert rows[3] == [0.5, 0.5]
    scores = weighted_sum_scores(vectors, senses)
    assert scores[1] == max(scores)
    ranking = weighted_sum_ranking(
        vectors, senses, tie_break=["d", "c", "b", "a"]
    )
    assert ranking[0] == 1
    with pytest.raises(ValueError, match="weight"):
        weighted_sum_scores(vectors, senses, weights=[1.0])


def test_lexicographic_ranking():
    senses = ["max", "min"]
    vectors = [(1.0, 0.0), (2.0, 10.0), (2.0, 5.0)]
    # Strict: objective 0 first, then objective 1.
    assert lexicographic_ranking(vectors, senses, [0, 1])[:2] == [2, 1]
    # Objective 1 first flips the order.
    assert lexicographic_ranking(vectors, senses, [1, 0])[0] == 0
    # A wide tolerance band on objective 0 lets objective 1 decide.
    assert lexicographic_ranking(
        vectors, senses, [0, 1], tolerance=2.0
    )[0] == 0
    with pytest.raises(ValueError, match="permutation"):
        lexicographic_ranking(vectors, senses, [0, 0])


def test_objective_catalog_extractors():
    records = [{
        "summary": {"throughput_ops_per_us": 2.0, "avg_power_w": 5.0,
                    "budget_violation_rate": 0.1, "tests_completed": 7},
        "faults": [
            {"injected_at": 10.0, "detected_at": 30.0},
            {"injected_at": 20.0, "detected_at": None},
        ],
    }]
    vec = objective_vector(
        ["throughput", "latency", "escapes", "power", "violations",
         "tests"],
        records,
    )
    assert vec == (2.0, 20.0, 1.0, 5.0, 0.1, 7.0)
    assert objective_vector(["latency"], [{"faults": []}]) == (None,)
    assert sorted(OBJECTIVES) == [
        "escapes", "latency", "power", "tests", "throughput", "violations",
    ]


# ----------------------------------------------------------------------
# Surrogate
# ----------------------------------------------------------------------
def test_polynomial_features_shapes():
    x = np.array([0.5, 1.0])
    assert polynomial_features(x, 1).tolist() == [1.0, 0.5, 1.0]
    assert len(polynomial_features(x, 2)) == 1 + 2 + 3
    with pytest.raises(ValueError, match="degree"):
        polynomial_features(x, 3)


def test_surrogate_recovers_linear_objective():
    space = small_space()
    rng = np.random.default_rng(3)
    candidates = [space.sample(rng) for _ in range(30)]

    def truth(c):
        return 2.0 * c["max_concurrent_tests"] - 10.0 * c["guard_fraction"]

    surrogate = PolynomialSurrogate(space, degree=1)
    surrogate.fit(candidates, [(truth(c), None) for c in candidates])
    assert surrogate.is_fit and surrogate.n_fit_points == 30
    probe = space.sample(rng)
    predicted = surrogate.predict([probe])[0]
    assert predicted[0] == pytest.approx(truth(probe), abs=1e-6)
    assert predicted[1] == 0.0          # never-defined objective -> 0


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_prune_threshold_zero_keeps_every_known_point(data):
    """Threshold 0 never drops a cached point — including the true best."""
    n = data.draw(st.integers(min_value=1, max_value=12))
    scores = data.draw(st.lists(
        st.floats(-5, 5, allow_nan=False), min_size=n, max_size=n,
    ))
    known = data.draw(st.lists(st.booleans(), min_size=n, max_size=n))
    outcome = prune_candidates(scores, known, threshold=0.0)
    kept = set(outcome.kept)
    assert kept.isdisjoint(outcome.pruned)
    assert kept | set(outcome.pruned) == set(range(n))
    for i, is_known in enumerate(known):
        if is_known:
            assert i in kept
    if any(known):
        best_known = max(
            (i for i in range(n) if known[i]), key=lambda i: scores[i]
        )
        assert best_known in kept
    # The predicted-best unknown candidate also always survives.
    assert scores.index(max(scores)) in kept


def test_prune_threshold_widens_the_net():
    scores = [1.0, 0.8, 0.1]
    known = [False, False, False]
    assert prune_candidates(scores, known, 0.0).kept == [0]
    assert prune_candidates(scores, known, 0.25).kept == [0, 1]
    assert prune_candidates(scores, known, 1.0).pruned == []
    with pytest.raises(ValueError, match="threshold"):
        prune_candidates(scores, known, -0.1)


# ----------------------------------------------------------------------
# DseSpec
# ----------------------------------------------------------------------
def test_spec_roundtrip_and_digest():
    spec = small_spec()
    again = DseSpec.from_json(spec.to_json())
    assert again == spec
    assert again.spec_digest() == spec.spec_digest()


def test_spec_requires_default_inside_space():
    # SystemConfig default max_concurrent_tests (8) must be reachable.
    with pytest.raises(ValueError, match="outside"):
        small_spec(space=[
            {"field": "max_concurrent_tests", "type": "int",
             "low": 2, "high": 4},
        ])


def test_spec_validation_errors():
    with pytest.raises(ValueError, match="unknown objectives"):
        small_spec(objectives=["throughput", "beauty"])
    with pytest.raises(ValueError, match="weight"):
        small_spec(weights=[1.0])
    with pytest.raises(ValueError, match="unknown dse spec keys"):
        DseSpec.from_dict({"name": "x", "space": [], "typo": 1})
    with pytest.raises(ValueError, match="unknown SystemConfig fields"):
        small_spec(base={"nope": 1})


def test_generation_rng_is_stable():
    spec = small_spec()
    a = spec.generation_rng(0).integers(0, 1 << 30, size=4)
    b = spec.generation_rng(0).integers(0, 1 << 30, size=4)
    c = spec.generation_rng(1).integers(0, 1 << 30, size=4)
    assert a.tolist() == b.tolist()
    assert a.tolist() != c.tolist()


# ----------------------------------------------------------------------
# Search end-to-end
# ----------------------------------------------------------------------
def test_search_runs_and_is_idempotent(tmp_path):
    spec = small_spec()
    search_dir = str(tmp_path / "s")
    out1 = run_search(search_dir, spec, jobs=0)
    assert out1.complete
    assert out1.counters["evaluated"] >= 1
    assert out1.front, "a completed search has a non-empty front"
    # The paper-default candidate is always evaluated in generation 0.
    assert out1.default["objectives"] is not None
    front_bytes = (tmp_path / "s" / "front.json").read_bytes()

    # A second invocation re-derives everything without new simulation.
    out2 = run_search(search_dir, jobs=0)
    assert out2.front_digest == out1.front_digest
    assert out2.counters == out1.counters
    assert (tmp_path / "s" / "front.json").read_bytes() == front_bytes

    # report_search reads back the same outcome.
    reported = report_search(search_dir)
    assert reported.front_digest == out1.front_digest
    assert reported.counters == out1.counters


def test_search_resume_reproduces_front_digest(tmp_path):
    """Kill mid-search, resume: front.json is byte-identical."""
    spec = small_spec()
    cold = str(tmp_path / "cold")
    run_search(cold, spec, jobs=0)

    killed = str(tmp_path / "killed")
    with pytest.raises(SearchInterrupted):
        run_search(killed, spec, jobs=0, interrupt_after=2)
    resumed = run_search(killed, jobs=0)
    assert resumed.complete
    cold_front = (tmp_path / "cold" / "front.json").read_bytes()
    killed_front = (tmp_path / "killed" / "front.json").read_bytes()
    assert cold_front == killed_front
    cold_report = json.loads((tmp_path / "cold" / "report.json").read_text())
    killed_report = json.loads(
        (tmp_path / "killed" / "report.json").read_text()
    )
    assert cold_report == killed_report


def test_search_refuses_mismatched_spec(tmp_path):
    search_dir = str(tmp_path / "s")
    run_search(search_dir, small_spec(), jobs=0)
    other = small_spec(name="other")
    with pytest.raises(ValueError, match="different spec"):
        run_search(search_dir, other, jobs=0)
    with pytest.raises(FileNotFoundError, match="no spec was given"):
        run_search(str(tmp_path / "missing"), None, jobs=0)


def test_campaign_spec_fixed_cells():
    cells = (
        freeze_cell({"tdp_w": 30.0}),
        freeze_cell({"tdp_w": 40.0}),
    )
    spec = CampaignSpec(name="c", fixed_cells=cells)
    assert spec.cells() == list(cells)
    data = spec.to_dict()
    assert [dict(c) for c in cells] == data["cells"]
    assert CampaignSpec.from_dict(data).spec_digest() == spec.spec_digest()
    with pytest.raises(ValueError, match="not both"):
        CampaignSpec(
            name="c", fixed_cells=cells,
            grid=(("tdp_w", (30.0,)),),
        )
    with pytest.raises(ValueError, match="duplicate"):
        CampaignSpec(name="c", fixed_cells=(cells[0], cells[0]))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def write_cli_spec(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(small_spec().to_json())
    return str(path)


def test_cli_dse_run_report_front(tmp_path, capsys):
    spec_path = write_cli_spec(tmp_path)
    search_dir = str(tmp_path / "s")
    assert main(["dse", "run", spec_path, "--dir", search_dir]) == 0
    out = capsys.readouterr().out
    assert "front digest:" in out and "front written to" in out

    assert main(["dse", "report", search_dir]) == 0
    assert "evaluated" in capsys.readouterr().out
    assert main(["dse", "report", search_dir, "--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["complete"] is True

    assert main(["dse", "front", search_dir, "--top", "2"]) == 0
    assert "rank" in capsys.readouterr().out
    assert main([
        "dse", "front", search_dir,
        "--lex", "escapes,power,throughput", "--json",
    ]) == 0
    ranked = json.loads(capsys.readouterr().out)
    assert ranked and "cell_digest" in ranked[0]


def test_cli_dse_interrupt_resume(tmp_path, capsys):
    spec_path = write_cli_spec(tmp_path)
    search_dir = str(tmp_path / "s")
    assert main([
        "dse", "run", spec_path, "--dir", search_dir,
        "--interrupt-after", "2",
    ]) == 3
    capsys.readouterr()
    assert main(["dse", "run", "--dir", search_dir]) == 0
    assert "front digest:" in capsys.readouterr().out


def test_cli_dse_error_paths(tmp_path, capsys):
    assert main(["dse", "report", str(tmp_path / "nope")]) == 2
    assert "cannot report search" in capsys.readouterr().err
    assert main(["dse", "front", str(tmp_path / "nope")]) == 2
    assert "cannot load front" in capsys.readouterr().err
    assert main(["dse", "run", "--dir", str(tmp_path / "nope")]) == 2
    assert "search failed" in capsys.readouterr().err
